//! Karp–Rabin style fingerprints for k-mers.
//!
//! The fingerprints serve as a pseudo-random total order on k-mers for the
//! minimizer schemes (as in the paper's implementation, which computes
//! minimizers with Karp–Rabin fingerprints). They are *not* used for string
//! equality testing anywhere in the workspace, so collisions only perturb the
//! sampling density, never correctness.

/// A Karp–Rabin rolling hasher over letter ranks.
///
/// Hashes are computed over a fixed word size (`u64`, wrapping arithmetic
/// modulo 2⁶⁴) with an odd multiplier, followed by a strong bit-mixing
/// finaliser; the mixed value is what defines the k-mer order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KarpRabin {
    /// Odd multiplier for the polynomial rolling hash.
    base: u64,
    /// `base^(k-1)`, used to remove the outgoing letter when rolling.
    lead_power: u64,
    /// k-mer length.
    k: usize,
}

impl KarpRabin {
    /// Creates a hasher for k-mers of length `k` with a seeded multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "k-mer length must be positive");
        // Derive an odd multiplier from the seed with a splitmix64 step.
        let base = splitmix64(seed) | 1;
        let mut lead_power = 1u64;
        for _ in 0..k - 1 {
            lead_power = lead_power.wrapping_mul(base);
        }
        Self {
            base,
            lead_power,
            k,
        }
    }

    /// The k-mer length this hasher was built for.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Raw (un-mixed) polynomial hash of `kmer` (must have length `k`).
    ///
    /// # Panics
    ///
    /// Panics if `kmer.len() != k`.
    pub fn raw(&self, kmer: &[u8]) -> u64 {
        assert_eq!(kmer.len(), self.k, "k-mer length mismatch");
        let mut h = 0u64;
        for &c in kmer {
            h = h.wrapping_mul(self.base).wrapping_add(c as u64 + 1);
        }
        h
    }

    /// Rolls a raw hash one position to the right: removes `outgoing` (the
    /// letter leaving on the left) and appends `incoming`.
    #[inline]
    pub fn roll(&self, raw: u64, outgoing: u8, incoming: u8) -> u64 {
        raw.wrapping_sub((outgoing as u64 + 1).wrapping_mul(self.lead_power))
            .wrapping_mul(self.base)
            .wrapping_add(incoming as u64 + 1)
    }

    /// The mixed fingerprint defining the k-mer order.
    #[inline]
    pub fn finalize(&self, raw: u64) -> u64 {
        splitmix64(raw)
    }

    /// Fingerprint of a k-mer in one call.
    ///
    /// # Panics
    ///
    /// Panics if `kmer.len() != k`.
    #[inline]
    pub fn fingerprint(&self, kmer: &[u8]) -> u64 {
        self.finalize(self.raw(kmer))
    }
}

/// The splitmix64 bit mixer (public-domain constant schedule).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_matches_direct() {
        let text: Vec<u8> = vec![0, 1, 2, 3, 0, 1, 1, 2, 3, 3, 0, 2];
        for k in 1..=6 {
            let kr = KarpRabin::new(k, 0xDEADBEEF);
            let mut raw = kr.raw(&text[..k]);
            for i in 1..=text.len() - k {
                raw = kr.roll(raw, text[i - 1], text[i + k - 1]);
                assert_eq!(raw, kr.raw(&text[i..i + k]), "k={k}, i={i}");
            }
        }
    }

    #[test]
    fn equal_kmers_have_equal_fingerprints() {
        let kr = KarpRabin::new(4, 7);
        assert_eq!(kr.fingerprint(&[1, 2, 3, 0]), kr.fingerprint(&[1, 2, 3, 0]));
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a = KarpRabin::new(3, 1);
        let b = KarpRabin::new(3, 2);
        // At least one pair of k-mers must compare differently for the two
        // seeds (overwhelmingly likely; fixed k-mers chosen to make this
        // deterministic for the chosen constants).
        let kmers: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i % 2, (i / 2) % 2, i / 4]).collect();
        let order = |kr: &KarpRabin| {
            let mut v: Vec<usize> = (0..kmers.len()).collect();
            v.sort_by_key(|&i| kr.fingerprint(&kmers[i]));
            v
        };
        assert_ne!(order(&a), order(&b));
    }

    #[test]
    fn fingerprints_spread_over_u64() {
        let kr = KarpRabin::new(2, 42);
        let mut values: Vec<u64> = Vec::new();
        for a in 0..4u8 {
            for b in 0..4u8 {
                values.push(kr.fingerprint(&[a, b]));
            }
        }
        values.sort_unstable();
        values.dedup();
        assert_eq!(
            values.len(),
            16,
            "all 16 two-letter k-mers should hash distinctly"
        );
    }

    #[test]
    #[should_panic(expected = "k-mer length mismatch")]
    fn wrong_length_panics() {
        let kr = KarpRabin::new(3, 0);
        let _ = kr.raw(&[0, 1]);
    }
}
