//! # ius-sampling — string sampling mechanisms
//!
//! This crate implements the *(ℓ, k)-minimizer schemes* (Roberts et al.,
//! Schleimer et al.) used by the space-efficient uncertain-string indexes:
//! given a window length `ℓ` and a k-mer length `k ≤ ℓ`, the scheme selects in
//! every length-`ℓ` window the starting position of the leftmost occurrence of
//! the smallest length-`k` substring, under a configurable total order on
//! k-mers. The set of selected positions over all windows has expected density
//! `O(1/ℓ)` when `k ≳ log_σ ℓ` (Lemma 1 of the paper).
//!
//! Two k-mer orders are provided, mirroring the paper's implementation:
//!
//! * [`KmerOrder::Lexicographic`] — plain lexicographic order on the letters;
//! * [`KmerOrder::KarpRabin`] — the order of Karp–Rabin style fingerprints,
//!   which behaves like a random order and achieves the expected density in
//!   practice even on repetitive inputs.
//!
//! The crate also provides:
//!
//! * [`window::SlidingWindowMinimizer`] — the linear-time monotone-deque
//!   scanner used when the text is available left to right;
//! * [`window::FrontWindowMinimizer`] — an ordered-multiset variant that
//!   supports *prepending* letters (the access pattern of the space-efficient
//!   DFS construction of Section 4 of the paper) in `O(log ℓ)` per update;
//! * density measurement helpers used by the ablation benchmarks.
//!
//! Positions are 0-based.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
pub mod fingerprint;
pub mod minimizer;
pub mod order;
pub mod window;

pub use density::{measure_density, recommended_k};
pub use fingerprint::KarpRabin;
pub use minimizer::MinimizerScheme;
pub use order::KmerOrder;
pub use window::{BackWindowMinimizer, FrontWindowMinimizer, SlidingWindowMinimizer};
