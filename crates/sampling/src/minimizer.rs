//! `(ℓ, k)`-minimizer schemes.

use crate::order::{KmerKeyer, KmerOrder};
use crate::window::SlidingWindowMinimizer;

/// An `(ℓ, k)`-minimizer scheme: a local scheme `f : Σ^ℓ → [0, ℓ-k]` that
/// selects, inside every length-`ℓ` window, the starting position of the
/// leftmost occurrence of the smallest length-`k` substring under the chosen
/// [`KmerOrder`].
#[derive(Debug, Clone)]
pub struct MinimizerScheme {
    ell: usize,
    k: usize,
    order: KmerOrder,
    keyer: KmerKeyer,
}

impl MinimizerScheme {
    /// Creates a scheme with window length `ell`, k-mer length `k` and the
    /// given order, for strings over an alphabet of size `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `ell < k`, or `sigma == 0`.
    pub fn new(ell: usize, k: usize, sigma: usize, order: KmerOrder) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(ell >= k, "window length ℓ = {ell} must be at least k = {k}");
        let keyer = KmerKeyer::new(order, k, sigma);
        Self {
            ell,
            k,
            order,
            keyer,
        }
    }

    /// Creates a scheme with the recommended `k ≈ ⌈log_σ ℓ⌉ + 1` (Lemma 1)
    /// and the default (Karp–Rabin) order.
    pub fn with_recommended_k(ell: usize, sigma: usize) -> Self {
        let k = crate::density::recommended_k(ell, sigma);
        Self::new(ell, k, sigma, KmerOrder::default())
    }

    /// Window length ℓ.
    #[inline]
    pub fn ell(&self) -> usize {
        self.ell
    }

    /// k-mer length.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The k-mer order in use.
    #[inline]
    pub fn order(&self) -> KmerOrder {
        self.order
    }

    /// Number of k-mer starting positions inside one window.
    #[inline]
    pub fn window_width(&self) -> usize {
        self.ell - self.k + 1
    }

    /// The underlying keyer, for callers that need raw k-mer keys (the
    /// space-efficient construction drives a
    /// [`crate::window::FrontWindowMinimizer`] with it).
    #[inline]
    pub fn keyer(&self) -> &KmerKeyer {
        &self.keyer
    }

    /// `f(window)`: the offset (0-based, in `[0, ℓ-k]`) of the leftmost
    /// smallest k-mer inside one length-ℓ window.
    ///
    /// # Panics
    ///
    /// Panics if `window.len() != ℓ`.
    pub fn window_minimizer(&self, window: &[u8]) -> usize {
        let mut keys = Vec::new();
        self.window_minimizer_with(window, &mut keys)
    }

    /// Like [`MinimizerScheme::window_minimizer`] but reusing a key buffer,
    /// so steady-state callers (one call per query in the minimizer indexes)
    /// allocate nothing once the buffer has warmed up.
    ///
    /// # Panics
    ///
    /// Panics if `window.len() != ℓ`.
    pub fn window_minimizer_with(&self, window: &[u8], key_buf: &mut Vec<u64>) -> usize {
        assert_eq!(
            window.len(),
            self.ell,
            "window must have length ℓ = {}",
            self.ell
        );
        if self.keyer.has_total_keys() {
            self.keyer.keys_into(window, key_buf);
            let keys = key_buf.as_slice();
            let mut best = 0usize;
            for (i, &key) in keys.iter().enumerate().skip(1) {
                if key < keys[best] {
                    best = i;
                }
            }
            best
        } else {
            // Fallback: direct slice comparison.
            let mut best = 0usize;
            for i in 1..=window.len() - self.k {
                if window[i..i + self.k] < window[best..best + self.k] {
                    best = i;
                }
            }
            best
        }
    }

    /// The minimizer positions `M_f(text)` of a whole string: the union over
    /// all windows of the selected position, sorted and deduplicated.
    ///
    /// Returns an empty vector when `|text| < ℓ`.
    pub fn minimizers(&self, text: &[u8]) -> Vec<usize> {
        self.minimizers_in_ranges(text, std::iter::once((0usize, text.len())))
    }

    /// Minimizer positions restricted to windows that fit inside the given
    /// half-open ranges `[start, end)` of `text`.
    ///
    /// This is the *property-respecting* variant used on the strands of a
    /// z-estimation: for a strand `(S_j, π_j)` the caller passes, for each
    /// starting position `i`, only windows with `i + ℓ ≤ extent_j(i)`; see
    /// [`MinimizerScheme::minimizers_respecting`] for that wrapper.
    pub fn minimizers_in_ranges<I>(&self, text: &[u8], ranges: I) -> Vec<usize>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut out = Vec::new();
        let width = self.window_width();
        let mut sw = SlidingWindowMinimizer::with_capacity(width);
        for (start, end) in ranges {
            let end = end.min(text.len());
            if end < start || end - start < self.ell {
                continue;
            }
            // Rolling keys for exactly this range. For orders without total
            // keys (very long lexicographic k-mers) `keys` returns ranks,
            // which order correctly within one range — unlike raw `key()`
            // values, which would collapse the fallback to "always leftmost".
            let keys = self.keyer.keys(&text[start..end]);
            sw.clear();
            // k-mer starting positions to consider: start ..= end - k.
            for pos in start..=end - self.k {
                sw.push(pos, keys[pos - start]);
                // Window of k-mers [w, w + width) where w = pos + 1 - width.
                if pos + 1 >= start + width {
                    let window_start = pos + 1 - width;
                    sw.retire(window_start);
                    if let Some(m) = sw.argmin() {
                        if out.last() != Some(&m) {
                            out.push(m);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Property-respecting minimizers of a strand: windows `[i, i+ℓ)` are
    /// considered only when `i + ℓ ≤ extent[i]` (i.e. `i + ℓ - 1 ≤ π[i]`, the
    /// condition of the paper), and the minimizer of each admissible window
    /// is selected.
    pub fn minimizers_respecting(&self, seq: &[u8], extent: &[u32]) -> Vec<usize> {
        assert_eq!(seq.len(), extent.len(), "sequence/extent length mismatch");
        // Admissible window starts form runs; convert them to maximal ranges
        // [i, extent[i]) and feed them to the range scanner. Because extents
        // are non-decreasing, consecutive admissible starts can share a
        // range: the windows of starts i..j all fit inside [i, extent at the
        // respective starts); we conservatively emit one range per maximal
        // run of admissible starts, ending at the extent of the last start
        // in the run (which is the largest by monotonicity). Inside such a
        // range every window [i, i+ℓ) with i in the run is admissible, and
        // windows starting after the run's last admissible start are excluded
        // by construction of the runs.
        let mut out = Vec::new();
        let n = seq.len();
        let mut i = 0usize;
        while i < n {
            if (extent[i] as usize) < i + self.ell {
                i += 1;
                continue;
            }
            // Maximal run of admissible starts beginning at i.
            let mut last = i;
            while last + 1 < n && (extent[last + 1] as usize) >= last + 1 + self.ell {
                last += 1;
            }
            // Windows for starts i..=last; k-mers live in [i, last + ℓ).
            let range_end = (last + self.ell).min(n);
            let width = self.window_width();
            let mut sw = SlidingWindowMinimizer::with_capacity(width);
            let keys = self.keyer.keys(&seq[i..range_end]);
            for pos in i..=range_end - self.k {
                let key = keys[pos - i];
                sw.push(pos, key);
                if pos + 1 >= i + width {
                    let window_start = pos + 1 - width;
                    if window_start <= last {
                        sw.retire(window_start);
                        if let Some(m) = sw.argmin() {
                            if out.last() != Some(&m) {
                                out.push(m);
                            }
                        }
                    }
                }
            }
            i = last + 1;
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Per-window rescan minimizers: every window is scanned independently
    /// with [`MinimizerScheme::window_minimizer`], costing `O(n·(ℓ−k))`
    /// letter work instead of the deque scan's amortised `O(1)` per
    /// position. Retained as the differential-testing ground truth and as
    /// the "before" measurement of the construction benchmark.
    pub fn minimizers_rescan(&self, text: &[u8]) -> Vec<usize> {
        self.minimizers_bruteforce(text)
    }

    /// Brute-force minimizers (quadratic), used as ground truth in tests.
    pub fn minimizers_bruteforce(&self, text: &[u8]) -> Vec<usize> {
        let mut out = Vec::new();
        if text.len() < self.ell {
            return out;
        }
        for start in 0..=text.len() - self.ell {
            let m = self.window_minimizer(&text[start..start + self.ell]);
            out.push(start + m);
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example2_lexicographic_minimizer() {
        // Example 2 of the paper: S = ABAABB, ℓ = 4, k = 2 → M_f(S) = {3}
        // (1-based) = {2} (0-based), because AA at position 3 is the smallest
        // 2-mer in every length-4 window.
        let s: Vec<u8> = vec![0, 1, 0, 0, 1, 1]; // ABAABB
        let scheme = MinimizerScheme::new(4, 2, 2, KmerOrder::Lexicographic);
        assert_eq!(scheme.minimizers(&s), vec![2]);
        assert_eq!(scheme.minimizers_bruteforce(&s), vec![2]);
        // The leftmost window's minimizer offset is 2 as well.
        assert_eq!(scheme.window_minimizer(&s[0..4]), 2);
    }

    #[test]
    fn linear_scan_matches_bruteforce() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for sigma in [2usize, 4, 8] {
            let text: Vec<u8> = (0..200).map(|_| rng.gen_range(0..sigma as u8)).collect();
            for order in [KmerOrder::Lexicographic, KmerOrder::KarpRabin { seed: 5 }] {
                for (ell, k) in [(4, 2), (8, 3), (16, 4), (31, 5)] {
                    let scheme = MinimizerScheme::new(ell, k, sigma, order);
                    assert_eq!(
                        scheme.minimizers(&text),
                        scheme.minimizers_bruteforce(&text),
                        "sigma={sigma} order={order:?} ell={ell} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn short_text_has_no_minimizers() {
        let scheme = MinimizerScheme::new(8, 3, 4, KmerOrder::Lexicographic);
        assert!(scheme.minimizers(&[0, 1, 2, 3]).is_empty());
    }

    #[test]
    fn minimizers_respecting_unrestricted_equals_plain() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let text: Vec<u8> = (0..120).map(|_| rng.gen_range(0..4u8)).collect();
        let extent: Vec<u32> = vec![text.len() as u32; text.len()];
        let scheme = MinimizerScheme::new(12, 3, 4, KmerOrder::default());
        assert_eq!(
            scheme.minimizers_respecting(&text, &extent),
            scheme.minimizers(&text)
        );
    }

    #[test]
    fn minimizers_respecting_restricts_windows() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100usize;
        let text: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4u8)).collect();
        // Property: only the prefix [0, 50) is covered.
        let extent: Vec<u32> = (0..n).map(|i| if i < 50 { 50 } else { i as u32 }).collect();
        let scheme = MinimizerScheme::new(10, 3, 4, KmerOrder::Lexicographic);
        let restricted = scheme.minimizers_respecting(&text, &extent);
        let expected = scheme.minimizers(&text[..50]);
        assert_eq!(restricted, expected);
        // And everything selected lies inside the covered prefix.
        assert!(restricted.iter().all(|&m| m < 50));
    }

    #[test]
    fn minimizers_respecting_brute_force_agreement() {
        // Compare against a direct per-window brute force on a property with
        // a staircase of extents.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let n = 80usize;
        let text: Vec<u8> = (0..n).map(|_| rng.gen_range(0..3u8)).collect();
        let mut extent: Vec<u32> = Vec::with_capacity(n);
        let mut e = 0u32;
        for i in 0..n {
            e = e.max(i as u32).max(rng.gen_range(i as u32..=(n as u32)));
            extent.push(e.min(n as u32));
        }
        let scheme = MinimizerScheme::new(7, 2, 3, KmerOrder::KarpRabin { seed: 1 });
        let got = scheme.minimizers_respecting(&text, &extent);
        let mut expected = Vec::new();
        for i in 0..n {
            if (extent[i] as usize) >= i + scheme.ell() {
                let m = scheme.window_minimizer(&text[i..i + scheme.ell()]);
                expected.push(i + m);
            }
        }
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(got, expected);
    }

    #[test]
    fn recommended_scheme_has_low_density_on_random_text() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let text: Vec<u8> = (0..20_000).map(|_| rng.gen_range(0..4u8)).collect();
        let ell = 128usize;
        let scheme = MinimizerScheme::with_recommended_k(ell, 4);
        let mins = scheme.minimizers(&text);
        let density = mins.len() as f64 / text.len() as f64;
        // Lemma 1: density O(1/ℓ); the known expectation for random minimizers
        // is ≈ 2/(ℓ-k+2). Allow generous slack.
        assert!(density < 4.0 / ell as f64, "density {density} too high");
        assert!(
            density > 0.5 / ell as f64,
            "density {density} suspiciously low"
        );
    }
}
