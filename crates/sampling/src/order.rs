//! Total orders on k-mers.
//!
//! A minimizer scheme needs a total order on length-`k` substrings. The order
//! is realised by mapping every k-mer to a `u64` *key*; k-mers are compared by
//! key, and ties between equal keys are broken towards the leftmost occurrence
//! (as the paper's definition requires).

use crate::fingerprint::KarpRabin;

/// The supported k-mer orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KmerOrder {
    /// Plain lexicographic order on the letter ranks.
    Lexicographic,
    /// Order induced by Karp–Rabin style fingerprints with the given seed —
    /// a pseudo-random order, as used in the paper's implementation.
    KarpRabin {
        /// Seed of the fingerprint multiplier / mixer.
        seed: u64,
    },
}

impl Default for KmerOrder {
    fn default() -> Self {
        KmerOrder::KarpRabin { seed: 0x5EED_1005 }
    }
}

/// A keyer turning k-mers (and rolling windows of a text) into order keys.
#[derive(Debug, Clone)]
pub struct KmerKeyer {
    k: usize,
    kind: KeyerKind,
}

#[derive(Debug, Clone)]
enum KeyerKind {
    /// Lexicographic keys: the k-mer is packed into a `u64` in base
    /// `radix` (requires `radix^k` to fit in 64 bits).
    LexPacked { radix: u64, lead: u64 },
    /// Lexicographic comparison for k-mers too long to pack (keys are not
    /// used; the caller falls back to slice comparison).
    LexPlain,
    /// Fingerprint keys.
    Hash(KarpRabin),
}

impl KmerKeyer {
    /// Creates a keyer for k-mers of length `k` over an alphabet of size
    /// `sigma`, under the given order.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `sigma == 0`.
    pub fn new(order: KmerOrder, k: usize, sigma: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(sigma > 0, "alphabet must be non-empty");
        let kind = match order {
            KmerOrder::Lexicographic => {
                let radix = sigma as u64;
                // Does radix^k fit into u64 (so packed keys order correctly)?
                let fits = (k as f64) * (radix as f64).log2() <= 63.0;
                if fits {
                    let mut lead = 1u64;
                    for _ in 0..k - 1 {
                        lead *= radix;
                    }
                    KeyerKind::LexPacked { radix, lead }
                } else {
                    KeyerKind::LexPlain
                }
            }
            KmerOrder::KarpRabin { seed } => KeyerKind::Hash(KarpRabin::new(k, seed)),
        };
        Self { k, kind }
    }

    /// The k-mer length.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// `true` if [`KmerKeyer::key`] yields keys whose numeric order equals the
    /// desired k-mer order. When `false` the caller must compare k-mers
    /// directly (only happens for very long lexicographic k-mers).
    #[inline]
    pub fn has_total_keys(&self) -> bool {
        !matches!(self.kind, KeyerKind::LexPlain)
    }

    /// The key of one k-mer (`kmer.len()` must equal `k`).
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from `k`.
    pub fn key(&self, kmer: &[u8]) -> u64 {
        assert_eq!(kmer.len(), self.k, "k-mer length mismatch");
        match &self.kind {
            KeyerKind::LexPacked { radix, .. } => {
                let mut v = 0u64;
                for &c in kmer {
                    v = v * radix + c as u64;
                }
                v
            }
            KeyerKind::LexPlain => 0,
            KeyerKind::Hash(kr) => kr.fingerprint(kmer),
        }
    }

    /// Keys for all k-mers of `text` (length `|text| - k + 1`), computed with
    /// rolling updates in `O(|text|)` time.
    ///
    /// Returns an empty vector when `|text| < k`.
    pub fn keys(&self, text: &[u8]) -> Vec<u64> {
        let mut keys = Vec::new();
        self.keys_into(text, &mut keys);
        keys
    }

    /// Like [`KmerKeyer::keys`] but writing into a reused buffer (cleared
    /// first), so steady-state callers allocate nothing once the buffer has
    /// warmed up.
    pub fn keys_into(&self, text: &[u8], keys: &mut Vec<u64>) {
        keys.clear();
        if text.len() < self.k {
            return;
        }
        let count = text.len() - self.k + 1;
        keys.reserve(count);
        match &self.kind {
            KeyerKind::LexPacked { radix, lead } => {
                let mut v = 0u64;
                for &c in &text[..self.k] {
                    v = v * radix + c as u64;
                }
                keys.push(v);
                for i in 1..count {
                    v = (v - text[i - 1] as u64 * lead) * radix + text[i + self.k - 1] as u64;
                    keys.push(v);
                }
            }
            KeyerKind::LexPlain => {
                // Rare fallback: rank the k-mers by sorting suffix slices.
                let mut idx: Vec<usize> = (0..count).collect();
                idx.sort_by(|&a, &b| text[a..a + self.k].cmp(&text[b..b + self.k]));
                let mut rank = vec![0u64; count];
                let mut current = 0u64;
                for w in 0..count {
                    if w > 0 {
                        let prev = idx[w - 1];
                        let this = idx[w];
                        if text[prev..prev + self.k] != text[this..this + self.k] {
                            current += 1;
                        }
                    }
                    rank[idx[w]] = current;
                }
                keys.extend_from_slice(&rank);
            }
            KeyerKind::Hash(kr) => {
                let mut raw = kr.raw(&text[..self.k]);
                keys.push(kr.finalize(raw));
                for i in 1..count {
                    raw = kr.roll(raw, text[i - 1], text[i + self.k - 1]);
                    keys.push(kr.finalize(raw));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_keys_order_like_slices() {
        let keyer = KmerKeyer::new(KmerOrder::Lexicographic, 3, 4);
        assert!(keyer.has_total_keys());
        let kmers: Vec<Vec<u8>> = vec![
            vec![0, 0, 0],
            vec![0, 0, 1],
            vec![0, 1, 0],
            vec![3, 3, 3],
            vec![1, 2, 3],
            vec![1, 2, 0],
        ];
        for a in &kmers {
            for b in &kmers {
                assert_eq!(keyer.key(a).cmp(&keyer.key(b)), a.cmp(b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn rolling_keys_match_pointwise_keys() {
        let text: Vec<u8> = vec![2, 0, 1, 0, 2, 3, 1, 1, 0, 2, 3, 0, 1];
        for order in [KmerOrder::Lexicographic, KmerOrder::KarpRabin { seed: 99 }] {
            for k in 1..=5 {
                let keyer = KmerKeyer::new(order, k, 4);
                let rolled = keyer.keys(&text);
                assert_eq!(rolled.len(), text.len() - k + 1);
                for (i, &key) in rolled.iter().enumerate() {
                    assert_eq!(
                        key,
                        keyer.key(&text[i..i + k]),
                        "order {order:?} k {k} i {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn keys_of_short_text_is_empty() {
        let keyer = KmerKeyer::new(KmerOrder::default(), 4, 4);
        assert!(keyer.keys(&[0, 1, 2]).is_empty());
    }

    #[test]
    fn lex_plain_fallback_ranks_correctly() {
        // k large enough that sigma^k overflows u64: 91^12 > 2^63.
        let keyer = KmerKeyer::new(KmerOrder::Lexicographic, 12, 91);
        assert!(!keyer.has_total_keys());
        let text: Vec<u8> = (0..40u32).map(|i| ((i * 37) % 91) as u8).collect();
        let keys = keyer.keys(&text);
        // The returned ranks must order windows exactly like slice comparison.
        for i in 0..keys.len() {
            for j in 0..keys.len() {
                let slice_cmp = text[i..i + 12].cmp(&text[j..j + 12]);
                assert_eq!(keys[i].cmp(&keys[j]), slice_cmp, "{i} vs {j}");
            }
        }
    }

    #[test]
    fn default_order_is_karp_rabin() {
        assert!(matches!(KmerOrder::default(), KmerOrder::KarpRabin { .. }));
    }
}
