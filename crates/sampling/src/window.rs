//! Window-minimum structures used to compute minimizers.
//!
//! Two access patterns arise in the paper:
//!
//! * scanning a text left to right (index construction from an explicit
//!   z-estimation, query-time minimizer of a pattern) — served by the
//!   monotone-deque [`SlidingWindowMinimizer`] in `O(1)` amortised per
//!   position;
//! * growing a string by *prepending* letters during the DFS of the
//!   space-efficient construction (Section 4), where the window is always the
//!   first `ℓ` letters of the current string — served by
//!   [`FrontWindowMinimizer`] in `O(log ℓ)` per update (the paper uses a heap;
//!   we use an ordered set, which gives the same bound);
//! * the mirrored pattern — growing by *appending* letters, used by the
//!   backward pass of the space-efficient construction — served by
//!   [`BackWindowMinimizer`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Monotone deque for leftmost-minimum queries over a sliding window of
/// keys. Keys are pushed left to right; the window is `[i - w + 1, i]` for a
/// caller-managed width.
#[derive(Debug, Clone, Default)]
pub struct SlidingWindowMinimizer {
    /// Indices with non-decreasing keys; front is the leftmost minimum.
    deque: VecDeque<(usize, u64)>,
}

impl SlidingWindowMinimizer {
    /// Creates an empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty structure with room for `width` entries (the deque
    /// never holds more than one entry per window slot), avoiding regrowth
    /// during long scans.
    pub fn with_capacity(width: usize) -> Self {
        Self {
            deque: VecDeque::with_capacity(width),
        }
    }

    /// Pushes the key of position `index` (indices must be pushed in
    /// increasing order).
    pub fn push(&mut self, index: usize, key: u64) {
        // Strictly greater keys at the back can never be a *leftmost*
        // minimum once `key` is present.
        while matches!(self.deque.back(), Some(&(_, back)) if back > key) {
            self.deque.pop_back();
        }
        self.deque.push_back((index, key));
    }

    /// Drops entries with index `< lower_bound` (the window's left edge).
    pub fn retire(&mut self, lower_bound: usize) {
        while matches!(self.deque.front(), Some(&(idx, _)) if idx < lower_bound) {
            self.deque.pop_front();
        }
    }

    /// The index of the leftmost occurrence of the smallest key currently in
    /// the window, if any.
    #[inline]
    pub fn argmin(&self) -> Option<usize> {
        self.deque.front().map(|&(idx, _)| idx)
    }

    /// Clears the structure.
    pub fn clear(&mut self) {
        self.deque.clear();
    }
}

/// Ordered-set window minimizer for strings grown by prepending letters.
///
/// The window always consists of the k-mers starting at the `w` smallest
/// *positions* currently present (`w = ℓ - k + 1` when used for an
/// `(ℓ, k)`-minimizer scheme). Positions here are the caller's absolute
/// positions, which *decrease* as letters are prepended.
#[derive(Debug, Clone)]
pub struct FrontWindowMinimizer {
    /// Number of k-mer slots in the window.
    width: usize,
    /// All currently live (key, position) pairs, ordered, for argmin queries.
    set: BTreeSet<(u64, usize)>,
    /// Positions currently inside the window with their keys.
    positions: BTreeMap<usize, u64>,
    /// Positions evicted from the window (too far right) with their keys,
    /// kept so they can re-enter when the front shrinks.
    parked: BTreeMap<usize, u64>,
}

impl FrontWindowMinimizer {
    /// Creates a window over `width` k-mer positions.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "window width must be positive");
        Self {
            width,
            set: BTreeSet::new(),
            positions: BTreeMap::new(),
            parked: BTreeMap::new(),
        }
    }

    /// Number of k-mer positions the window can hold.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of k-mer positions currently inside the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` iff the window holds no k-mer.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// `true` iff the window is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.set.len() == self.width
    }

    /// Inserts the k-mer starting at `position` with order key `key`.
    /// `position` must be smaller than every position previously inserted and
    /// not yet removed (the prepend access pattern).
    pub fn push_front(&mut self, position: usize, key: u64) {
        debug_assert!(
            self.positions
                .keys()
                .next()
                .map(|&p| position < p)
                .unwrap_or(true),
            "push_front must use strictly decreasing positions"
        );
        self.positions.insert(position, key);
        self.set.insert((key, position));
        if self.positions.len() > self.width {
            // Evict the largest position (the back of the window).
            let (&back, &back_key) = self.positions.iter().next_back().expect("non-empty");
            self.positions.remove(&back);
            self.set.remove(&(back_key, back));
            self.parked.insert(back, back_key);
        }
    }

    /// Removes the front-most k-mer (the one with the smallest position);
    /// the k-mer that was evicted earliest re-enters the window, restoring
    /// the state before the matching [`FrontWindowMinimizer::push_front`].
    ///
    /// Returns the removed position, if any.
    pub fn pop_front(&mut self) -> Option<usize> {
        let (&front, &front_key) = self.positions.iter().next()?;
        self.positions.remove(&front);
        self.set.remove(&(front_key, front));
        // Re-admit the parked k-mer with the smallest position, if any.
        if self.positions.len() < self.width {
            if let Some((&pos, &key)) = self.parked.iter().next() {
                self.parked.remove(&pos);
                self.positions.insert(pos, key);
                self.set.insert((key, pos));
            }
        }
        Some(front)
    }

    /// The position of the leftmost occurrence of the smallest key currently
    /// in the window.
    #[inline]
    pub fn argmin(&self) -> Option<usize> {
        self.set.iter().next().map(|&(_, p)| p)
    }
}

/// Ordered-set window minimizer for strings grown by *appending* letters
/// (the access pattern of the space-efficient construction's backward pass).
///
/// The window always consists of the k-mers starting at the `width` *largest*
/// positions currently present; ties between equal keys are still broken
/// towards the smallest (leftmost) position, as the minimizer definition
/// requires.
#[derive(Debug, Clone)]
pub struct BackWindowMinimizer {
    width: usize,
    set: BTreeSet<(u64, usize)>,
    positions: BTreeMap<usize, u64>,
    /// Positions evicted on the left, ready to re-enter when the back shrinks.
    parked: BTreeMap<usize, u64>,
}

impl BackWindowMinimizer {
    /// Creates a window over `width` k-mer positions.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "window width must be positive");
        Self {
            width,
            set: BTreeSet::new(),
            positions: BTreeMap::new(),
            parked: BTreeMap::new(),
        }
    }

    /// Number of k-mer positions currently inside the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` iff the window holds no k-mer.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Inserts the k-mer starting at `position` (must exceed every position
    /// previously inserted and not yet removed).
    pub fn push_back(&mut self, position: usize, key: u64) {
        debug_assert!(
            self.positions
                .keys()
                .next_back()
                .map(|&p| position > p)
                .unwrap_or(true),
            "push_back must use strictly increasing positions"
        );
        self.positions.insert(position, key);
        self.set.insert((key, position));
        if self.positions.len() > self.width {
            let (&front, &front_key) = self.positions.iter().next().expect("non-empty");
            self.positions.remove(&front);
            self.set.remove(&(front_key, front));
            self.parked.insert(front, front_key);
        }
    }

    /// Removes the most recently pushed k-mer, restoring the state before the
    /// matching [`BackWindowMinimizer::push_back`]. Returns its position.
    pub fn pop_back(&mut self) -> Option<usize> {
        let (&back, &back_key) = self.positions.iter().next_back()?;
        self.positions.remove(&back);
        self.set.remove(&(back_key, back));
        if self.positions.len() < self.width {
            if let Some((&pos, &key)) = self.parked.iter().next_back() {
                self.parked.remove(&pos);
                self.positions.insert(pos, key);
                self.set.insert((key, pos));
            }
        }
        Some(back)
    }

    /// The position of the leftmost occurrence of the smallest key currently
    /// in the window.
    #[inline]
    pub fn argmin(&self) -> Option<usize> {
        self.set.iter().next().map(|&(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_leftmost_min(keys: &[(usize, u64)]) -> Option<usize> {
        keys.iter()
            .copied()
            .min_by_key(|&(p, k)| (k, p))
            .map(|(p, _)| p)
    }

    #[test]
    fn sliding_window_matches_bruteforce() {
        let keys: Vec<u64> = vec![5, 3, 9, 3, 7, 1, 4, 4, 8, 2, 6, 1, 1, 0, 9];
        for width in 1..=keys.len() {
            let mut sw = SlidingWindowMinimizer::new();
            for i in 0..keys.len() {
                sw.push(i, keys[i]);
                if i + 1 >= width {
                    let start = i + 1 - width;
                    sw.retire(start);
                    let window: Vec<(usize, u64)> = (start..=i).map(|j| (j, keys[j])).collect();
                    assert_eq!(sw.argmin(), brute_leftmost_min(&window), "w={width} i={i}");
                }
            }
        }
    }

    #[test]
    fn sliding_window_ties_pick_leftmost() {
        let mut sw = SlidingWindowMinimizer::new();
        sw.push(0, 7);
        sw.push(1, 7);
        sw.push(2, 7);
        sw.retire(0);
        assert_eq!(sw.argmin(), Some(0));
        sw.retire(1);
        assert_eq!(sw.argmin(), Some(1));
    }

    #[test]
    fn front_window_basic() {
        // Positions pushed in decreasing order: 9, 8, 7, ... with keys.
        let mut fw = FrontWindowMinimizer::new(3);
        fw.push_front(9, 50);
        fw.push_front(8, 20);
        fw.push_front(7, 70);
        assert!(fw.is_full());
        assert_eq!(fw.argmin(), Some(8));
        // Adding position 6 evicts position 9.
        fw.push_front(6, 60);
        assert_eq!(fw.len(), 3);
        assert_eq!(fw.argmin(), Some(8));
        // Adding position 5 evicts position 8 → min becomes 5 vs 6 vs 7.
        fw.push_front(5, 65);
        assert_eq!(fw.argmin(), Some(6));
        // Undo: removing 5 restores 8 into the window.
        assert_eq!(fw.pop_front(), Some(5));
        assert_eq!(fw.argmin(), Some(8));
        assert_eq!(fw.pop_front(), Some(6));
        assert_eq!(fw.argmin(), Some(8));
    }

    #[test]
    fn front_window_mirrors_stack_of_windows() {
        // Randomised push/pop sequence checked against brute force.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let width = 4;
        let mut fw = FrontWindowMinimizer::new(width);
        // Stack of (position, key) with positions decreasing as we push.
        let mut stack: Vec<(usize, u64)> = Vec::new();
        let mut next_pos = 1000usize;
        for _ in 0..400 {
            let push = stack.is_empty() || rng.gen_bool(0.6);
            if push {
                next_pos -= 1;
                let key = rng.gen_range(0..30) as u64;
                stack.push((next_pos, key));
                fw.push_front(next_pos, key);
            } else {
                let (pos, _) = stack.pop().unwrap();
                next_pos = pos + 1;
                assert_eq!(fw.pop_front(), Some(pos));
            }
            // Brute force: the window is the first `width` entries from the top
            // of the stack (smallest positions).
            let window: Vec<(usize, u64)> = stack.iter().rev().take(width).copied().collect();
            assert_eq!(fw.argmin(), brute_leftmost_min(&window));
        }
    }

    #[test]
    fn front_window_ties_pick_smallest_position() {
        let mut fw = FrontWindowMinimizer::new(4);
        fw.push_front(30, 5);
        fw.push_front(29, 5);
        fw.push_front(28, 5);
        assert_eq!(fw.argmin(), Some(28));
    }

    #[test]
    fn pop_from_empty_returns_none() {
        let mut fw = FrontWindowMinimizer::new(2);
        assert_eq!(fw.pop_front(), None);
        assert!(fw.is_empty());
        let mut bw = BackWindowMinimizer::new(2);
        assert_eq!(bw.pop_back(), None);
        assert!(bw.is_empty());
    }

    #[test]
    fn back_window_mirrors_stack_of_windows() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let width = 5;
        let mut bw = BackWindowMinimizer::new(width);
        let mut stack: Vec<(usize, u64)> = Vec::new();
        let mut next_pos = 0usize;
        for _ in 0..500 {
            let push = stack.is_empty() || rng.gen_bool(0.6);
            if push {
                let key = rng.gen_range(0..20) as u64;
                stack.push((next_pos, key));
                bw.push_back(next_pos, key);
                next_pos += 1;
            } else {
                let (pos, _) = stack.pop().unwrap();
                next_pos = pos;
                assert_eq!(bw.pop_back(), Some(pos));
            }
            // The window is the last `width` pushed entries (largest positions).
            let window: Vec<(usize, u64)> = stack.iter().rev().take(width).copied().collect();
            assert_eq!(bw.argmin(), brute_leftmost_min(&window));
        }
    }

    #[test]
    fn back_window_ties_pick_smallest_position() {
        let mut bw = BackWindowMinimizer::new(4);
        bw.push_back(10, 5);
        bw.push_back(11, 5);
        bw.push_back(12, 5);
        assert_eq!(bw.argmin(), Some(10));
        assert_eq!(bw.len(), 3);
    }
}
