//! Differential property tests of the minimizer scanners: the amortised-O(1)
//! monotone-deque scan must select exactly the positions of the per-window
//! rescan (`window_minimizer` applied to every window) on random and
//! degenerate inputs, for both k-mer orders, including the leftmost-smallest
//! tie-breaking that repetitive inputs exercise heavily.

use ius_sampling::{KmerOrder, MinimizerScheme, SlidingWindowMinimizer};
use proptest::prelude::*;

fn assert_scan_matches_rescan(text: &[u8], sigma: usize, label: &str) {
    for order in [KmerOrder::Lexicographic, KmerOrder::KarpRabin { seed: 7 }] {
        for (ell, k) in [(3usize, 1usize), (4, 2), (8, 3), (12, 12), (16, 5)] {
            if ell > text.len() || k > ell {
                continue;
            }
            let scheme = MinimizerScheme::new(ell, k, sigma, order);
            assert_eq!(
                scheme.minimizers(text),
                scheme.minimizers_rescan(text),
                "{label}: order {order:?}, ell {ell}, k {k}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Deque scan ≡ per-window rescan on random texts.
    #[test]
    fn random_texts(sigma in 2usize..=6, raw in prop::collection::vec(0u8..=254, 0..160)) {
        let text: Vec<u8> = raw.into_iter().map(|c| c % sigma as u8).collect();
        assert_scan_matches_rescan(&text, sigma, "random");
    }

    /// Periodic texts: every window is full of key ties, so this pins the
    /// leftmost-smallest tie-breaking.
    #[test]
    fn periodic_texts(
        motif in prop::collection::vec(0u8..3, 1..5),
        repeats in 2usize..60,
    ) {
        let mut text = Vec::with_capacity(motif.len() * repeats);
        for _ in 0..repeats {
            text.extend_from_slice(&motif);
        }
        assert_scan_matches_rescan(&text, 3, "periodic");
    }

    /// Restricting to the full range must equal the plain scan, and windows
    /// in clipped sub-ranges must be a subset computed consistently.
    #[test]
    fn range_restriction_consistency(
        raw in prop::collection::vec(0u8..4, 24..120),
        cut in 0usize..24,
    ) {
        let scheme = MinimizerScheme::new(8, 3, 4, KmerOrder::default());
        let full = scheme.minimizers_in_ranges(&raw, std::iter::once((0usize, raw.len())));
        prop_assert_eq!(&full, &scheme.minimizers(&raw));
        // A prefix range behaves like the scan of the prefix slice.
        let end = raw.len() - cut;
        let prefix = scheme.minimizers_in_ranges(&raw, std::iter::once((0usize, end)));
        prop_assert_eq!(&prefix, &scheme.minimizers(&raw[..end]));
    }
}

#[test]
fn degenerate_inputs() {
    // Empty and too-short texts.
    let scheme = MinimizerScheme::new(8, 3, 4, KmerOrder::default());
    assert!(scheme.minimizers(&[]).is_empty());
    assert!(scheme.minimizers(&[0, 1, 2]).is_empty());
    // All-equal letters of several lengths: everything ties everywhere.
    for len in [8usize, 9, 64, 257] {
        let text = vec![1u8; len];
        assert_scan_matches_rescan(&text, 4, "all-equal");
    }
    // Strictly increasing / decreasing ramps.
    let up: Vec<u8> = (0..200u8).map(|i| i % 5).collect();
    assert_scan_matches_rescan(&up, 5, "ramp");
}

#[test]
fn lex_fallback_without_total_keys_matches_rescan() {
    // σ = 91, k = 12 overflows the packed lexicographic keys, forcing the
    // rank-based fallback; the deque scan must still match the rescan
    // (regression: raw fallback keys used to collapse to a constant).
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(91);
    let text: Vec<u8> = (0..400).map(|_| rng.gen_range(0..91u8)).collect();
    let scheme = MinimizerScheme::new(16, 12, 91, KmerOrder::Lexicographic);
    assert!(!scheme.keyer().has_total_keys());
    assert_eq!(scheme.minimizers(&text), scheme.minimizers_rescan(&text));
}

#[test]
fn deque_capacity_constructor_behaves_identically() {
    let keys: Vec<u64> = vec![5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9];
    for width in 1..=keys.len() {
        let mut a = SlidingWindowMinimizer::new();
        let mut b = SlidingWindowMinimizer::with_capacity(width);
        for (i, &k) in keys.iter().enumerate() {
            a.push(i, k);
            b.push(i, k);
            if i + 1 >= width {
                a.retire(i + 1 - width);
                b.retire(i + 1 - width);
                assert_eq!(a.argmin(), b.argmin(), "width {width} i {i}");
            }
        }
    }
}
