//! `serve` — run the query server over a persisted or freshly built index.
//!
//! ```text
//! # serve a persisted sharded index (self-contained):
//! serve --index shards.iusx --port 7878
//!
//! # serve a persisted single-machine index; the corpus it was built over
//! # is regenerated from the named preset:
//! serve --index mwsa.iusx --corpus pangenome --n 100000
//!
//! # build in-process, optionally persisting for later serves/reloads:
//! serve --build mwsa-g --corpus uniform --n 100000 --save mwsa-g.iusx
//! serve --build mwsa-g --corpus rssi --n 50000 --shards 4
//!
//! # serve a *mutable* live corpus (enables APPEND / DELETE_RANGE / FLUSH /
//! # COMPACT): seed from a preset, or reopen a persisted manifest dir —
//! # which is saved back on graceful shutdown:
//! serve --live --build mwsa-g --corpus uniform --n 100000
//! serve --live --build mwsa-g --corpus uniform --n 100000 --live-dir state/
//! serve --live --live-dir state/
//! ```
//!
//! Corpus presets mirror the benchmark corpora (`BENCH_*.json`); `--z` and
//! `--ell` default to each preset's benchmark parameters. The server runs
//! until a client sends `SHUTDOWN` (or the process is killed).

use ius_datasets::corpora::bench_corpus;
use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexVariant, ShardedIndex};
use ius_live::{FsyncPolicy, LiveConfig, LiveIndex};
use ius_server::{ServedIndex, Server, ServerConfig};
use ius_weighted::WeightedString;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    index: Option<PathBuf>,
    build: Option<IndexFamily>,
    corpus: Option<String>,
    n: usize,
    seed: Option<u64>,
    z: Option<f64>,
    ell: Option<usize>,
    shards: Option<usize>,
    max_pattern_len: Option<usize>,
    save: Option<PathBuf>,
    live: bool,
    live_dir: Option<PathBuf>,
    flush_threshold: Option<usize>,
    fsync: Option<FsyncPolicy>,
    host: String,
    port: u16,
    workers: Option<usize>,
    queue_depth: Option<usize>,
    metrics_interval: Option<u64>,
    slow_query_ms: Option<u64>,
}

fn print_help() {
    println!(
        "serve — run the uncertain-string query server\n\n\
         index source (exactly one):\n\
         \x20 --index <path>        load a persisted index file (sharded files are\n\
         \x20                       self-contained; single-machine files also need --corpus)\n\
         \x20 --build <family>      build in-process: naive|wst|wsa|mwst|mwsa|mwst-g|mwsa-g|\n\
         \x20                       se-mwst|se-mwsa (needs --corpus)\n\n\
         corpus (synthetic presets, regenerated deterministically):\n\
         \x20 --corpus <name>       uniform|uniform_high_entropy|pangenome|rssi\n\
         \x20 --n <len>             corpus length (default 100000)\n\
         \x20 --seed <seed>         override the preset's generator seed\n\
         \x20 --z <z>               weight threshold (default: preset's benchmark z)\n\
         \x20 --ell <ell>           minimum pattern length (default: preset's benchmark ell)\n\n\
         build options:\n\
         \x20 --shards <S>          build a sharded composite with S shards\n\
         \x20 --max-pattern-len <m> sharded/live pattern-length bound (default 2*ell)\n\
         \x20 --save <path>         persist the built index before serving\n\n\
         live mode (mutable corpus — APPEND/DELETE_RANGE/FLUSH/COMPACT):\n\
         \x20 --live                serve a live index (seed with --build/--corpus,\n\
         \x20                       or reopen --live-dir)\n\
         \x20 --live-dir <dir>      open the IUSL manifest dir if it exists; the live\n\
         \x20                       state is saved back there on graceful shutdown\n\
         \x20 --flush-threshold <r> memtable rows per segment flush (default 8192)\n\
         \x20 --fsync <policy>      arm the write-ahead log (needs --live-dir): every\n\
         \x20                       mutation is logged before it is acked, and a crash\n\
         \x20                       replays the log on reopen. Policies: record (fsync\n\
         \x20                       each record), interval:<ms> (fsync at most every\n\
         \x20                       <ms> milliseconds), never (leave flushing to the OS)\n\n\
         server options:\n\
         \x20 --host <host>         bind host (default 127.0.0.1)\n\
         \x20 --port <port>         bind port (default 7878; 0 = ephemeral)\n\
         \x20 --workers <w>         worker threads (default: all CPUs)\n\
         \x20 --queue-depth <d>     admission-queue capacity (default 64)\n\n\
         observability:\n\
         \x20 --metrics-interval <s> dump the merged metrics snapshot (per-stage query\n\
         \x20                       histograms, queue-wait/service split, live/WAL\n\
         \x20                       timings, slow-query log) to stderr every <s> seconds\n\
         \x20 --slow-query-ms <ms>  slow-query log threshold (default 50; 0 logs every\n\
         \x20                       query)\n"
    );
}

fn parse_family(name: &str) -> Result<IndexFamily, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "naive" => IndexFamily::Naive,
        "wst" => IndexFamily::Wst,
        "wsa" => IndexFamily::Wsa,
        "mwst" => IndexFamily::Minimizer(IndexVariant::Tree),
        "mwsa" => IndexFamily::Minimizer(IndexVariant::Array),
        "mwst-g" => IndexFamily::Minimizer(IndexVariant::TreeGrid),
        "mwsa-g" => IndexFamily::Minimizer(IndexVariant::ArrayGrid),
        "se-mwst" => IndexFamily::SpaceEfficient(IndexVariant::Tree),
        "se-mwsa" => IndexFamily::SpaceEfficient(IndexVariant::Array),
        other => return Err(format!("unknown index family {other:?}")),
    })
}

/// `(corpus, default z, default ell)` of one named preset — the canonical
/// benchmark configurations, shared with the harness through
/// `ius_datasets::corpora` so the served corpus can never drift from the
/// one a persisted index was built over.
fn corpus_preset(
    name: &str,
    n: usize,
    seed: Option<u64>,
) -> Result<(WeightedString, f64, usize), String> {
    bench_corpus(name, n, seed)
        .map(|corpus| (corpus.x, corpus.z, corpus.ell))
        .ok_or_else(|| {
            format!(
                "unknown corpus preset {name:?} (use uniform|uniform_high_entropy|pangenome|rssi)"
            )
        })
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        index: None,
        build: None,
        corpus: None,
        n: 100_000,
        seed: None,
        z: None,
        ell: None,
        shards: None,
        max_pattern_len: None,
        save: None,
        live: false,
        live_dir: None,
        flush_threshold: None,
        fsync: None,
        host: "127.0.0.1".into(),
        port: 7878,
        workers: None,
        queue_depth: None,
        metrics_interval: None,
        slow_query_ms: None,
    };
    let mut i = 0usize;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--index" => parsed.index = Some(PathBuf::from(value(args, i, "--index")?)),
            "--build" => parsed.build = Some(parse_family(&value(args, i, "--build")?)?),
            "--corpus" => parsed.corpus = Some(value(args, i, "--corpus")?),
            "--n" => {
                parsed.n = value(args, i, "--n")?
                    .parse()
                    .map_err(|e| format!("bad --n: {e}"))?
            }
            "--seed" => {
                parsed.seed = Some(
                    value(args, i, "--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?,
                )
            }
            "--z" => {
                parsed.z = Some(
                    value(args, i, "--z")?
                        .parse()
                        .map_err(|e| format!("bad --z: {e}"))?,
                )
            }
            "--ell" => {
                parsed.ell = Some(
                    value(args, i, "--ell")?
                        .parse()
                        .map_err(|e| format!("bad --ell: {e}"))?,
                )
            }
            "--shards" => {
                parsed.shards = Some(
                    value(args, i, "--shards")?
                        .parse()
                        .map_err(|e| format!("bad --shards: {e}"))?,
                )
            }
            "--max-pattern-len" => {
                parsed.max_pattern_len = Some(
                    value(args, i, "--max-pattern-len")?
                        .parse()
                        .map_err(|e| format!("bad --max-pattern-len: {e}"))?,
                )
            }
            "--save" => parsed.save = Some(PathBuf::from(value(args, i, "--save")?)),
            "--live" => {
                parsed.live = true;
                i += 1;
                continue;
            }
            "--live-dir" => parsed.live_dir = Some(PathBuf::from(value(args, i, "--live-dir")?)),
            "--flush-threshold" => {
                parsed.flush_threshold = Some(
                    value(args, i, "--flush-threshold")?
                        .parse()
                        .map_err(|e| format!("bad --flush-threshold: {e}"))?,
                )
            }
            "--fsync" => {
                parsed.fsync = Some(
                    FsyncPolicy::parse(&value(args, i, "--fsync")?)
                        .map_err(|e| format!("bad --fsync: {e}"))?,
                )
            }
            "--host" => parsed.host = value(args, i, "--host")?,
            "--port" => {
                parsed.port = value(args, i, "--port")?
                    .parse()
                    .map_err(|e| format!("bad --port: {e}"))?
            }
            "--workers" => {
                parsed.workers = Some(
                    value(args, i, "--workers")?
                        .parse()
                        .map_err(|e| format!("bad --workers: {e}"))?,
                )
            }
            "--queue-depth" => {
                parsed.queue_depth = Some(
                    value(args, i, "--queue-depth")?
                        .parse()
                        .map_err(|e| format!("bad --queue-depth: {e}"))?,
                )
            }
            "--metrics-interval" => {
                let seconds: u64 = value(args, i, "--metrics-interval")?
                    .parse()
                    .map_err(|e| format!("bad --metrics-interval: {e}"))?;
                if seconds == 0 {
                    return Err("--metrics-interval must be positive".into());
                }
                parsed.metrics_interval = Some(seconds);
            }
            "--slow-query-ms" => {
                parsed.slow_query_ms = Some(
                    value(args, i, "--slow-query-ms")?
                        .parse()
                        .map_err(|e| format!("bad --slow-query-ms: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 2;
    }
    if parsed.live {
        if parsed.index.is_some() {
            return Err(
                "--live serves a mutable index; --index is for static files (use --live-dir \
                 to reopen saved live state)"
                    .into(),
            );
        }
        if parsed.shards.is_some() {
            return Err("--live and --shards are mutually exclusive".into());
        }
        if parsed.save.is_some() {
            return Err(
                "--live state is a manifest directory, not a single index file; use \
                 --live-dir instead of --save"
                    .into(),
            );
        }
        let can_open = parsed
            .live_dir
            .as_ref()
            .is_some_and(|dir| dir.join("live.iusl").exists());
        if !can_open && parsed.build.is_none() {
            return Err(
                "--live needs --build/--corpus to seed a fresh corpus, or --live-dir \
                 pointing at an existing manifest"
                    .into(),
            );
        }
        if can_open && (parsed.build.is_some() || parsed.corpus.is_some()) {
            return Err(
                "--live-dir points at an existing manifest, which would be reopened and \
                 the --build/--corpus seed silently discarded; drop --build/--corpus to \
                 reopen, or remove the manifest directory to reseed"
                    .into(),
            );
        }
        if parsed.build.is_some() && parsed.corpus.is_none() {
            return Err("--build needs --corpus".into());
        }
        if parsed.fsync.is_some() && parsed.live_dir.is_none() {
            return Err(
                "--fsync arms the write-ahead log, which lives next to the manifest; \
                 it needs --live-dir"
                    .into(),
            );
        }
    } else {
        if parsed.live_dir.is_some() || parsed.flush_threshold.is_some() || parsed.fsync.is_some() {
            return Err("--live-dir, --flush-threshold, and --fsync need --live".into());
        }
        if parsed.index.is_some() == parsed.build.is_some() {
            return Err("exactly one of --index and --build is required".into());
        }
        if parsed.build.is_some() && parsed.corpus.is_none() {
            return Err("--build needs --corpus".into());
        }
    }
    Ok(parsed)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            print_help();
            std::process::exit(2);
        }
    };

    // Regenerate the corpus when one is named (needed for --build and for
    // single-machine --index files).
    let corpus = args.corpus.as_deref().map(|name| {
        let (x, z, ell) = corpus_preset(name, args.n, args.seed).unwrap_or_else(|msg| {
            eprintln!("error: {msg}");
            std::process::exit(2);
        });
        eprintln!(
            "corpus {name}: n = {}, sigma = {} (z = {}, ell = {})",
            x.len(),
            x.sigma(),
            args.z.unwrap_or(z),
            args.ell.unwrap_or(ell)
        );
        (Arc::new(x), args.z.unwrap_or(z), args.ell.unwrap_or(ell))
    });

    // Live mode: the server keeps a handle so graceful shutdown can save
    // the mutated state back into --live-dir.
    let mut live_handle: Option<Arc<LiveIndex>> = None;
    let (served, reload_path) = if args.live {
        let live_config = LiveConfig {
            flush_threshold: args.flush_threshold.unwrap_or(8_192),
            ..Default::default()
        };
        let manifest_exists = args
            .live_dir
            .as_ref()
            .is_some_and(|dir| dir.join("live.iusl").exists());
        let live = if manifest_exists {
            let dir = args.live_dir.as_ref().expect("checked by parse_args");
            let live = LiveIndex::open(dir, live_config).unwrap_or_else(|e| {
                eprintln!("error: cannot open live dir {}: {e}", dir.display());
                std::process::exit(1);
            });
            eprintln!("reopened live state from {}", dir.display());
            live
        } else {
            let family = args.build.expect("checked by parse_args");
            let (x, z, ell) = corpus.clone().expect("checked by parse_args");
            let params = IndexParams::new(z, ell, x.sigma()).unwrap_or_else(|e| {
                eprintln!("error: invalid parameters: {e}");
                std::process::exit(2);
            });
            let spec = IndexSpec::new(family, params);
            let bound = args.max_pattern_len.unwrap_or(2 * ell);
            LiveIndex::from_corpus(&x, spec, bound, live_config).unwrap_or_else(|e| {
                eprintln!("error: live seed build failed: {e}");
                std::process::exit(1);
            })
        };
        if let Some(policy) = args.fsync {
            let dir = args.live_dir.as_ref().expect("checked by parse_args");
            live.enable_durability(dir, policy).unwrap_or_else(|e| {
                eprintln!("error: cannot arm the WAL in {}: {e}", dir.display());
                std::process::exit(1);
            });
            eprintln!("write-ahead log armed (fsync {policy})");
        }
        let stats = live.live_stats();
        eprintln!(
            "live corpus: n = {}, {} segment(s), {} memtable row(s)",
            stats.corpus_len, stats.segments, stats.memtable_rows
        );
        if stats.recovered_records > 0 {
            eprintln!(
                "recovered {} mutation(s) from the write-ahead log",
                stats.recovered_records
            );
        }
        let live = Arc::new(live);
        live_handle = Some(live.clone());
        (ServedIndex::live(live), None)
    } else if let Some(path) = &args.index {
        let served = ServedIndex::load(path, corpus.as_ref().map(|(x, _, _)| x.clone()))
            .unwrap_or_else(|e| {
                eprintln!("error: cannot serve {}: {e}", path.display());
                std::process::exit(1);
            });
        (served, Some(path.clone()))
    } else {
        let family = args.build.expect("checked by parse_args");
        let (x, z, ell) = corpus.clone().expect("checked by parse_args");
        let params = IndexParams::new(z, ell, x.sigma()).unwrap_or_else(|e| {
            eprintln!("error: invalid parameters: {e}");
            std::process::exit(2);
        });
        let spec = IndexSpec::new(family, params);
        let served = if let Some(shards) = args.shards {
            let bound = args.max_pattern_len.unwrap_or(2 * ell);
            let sharded = ShardedIndex::build(&x, spec, shards, bound).unwrap_or_else(|e| {
                eprintln!("error: sharded build failed: {e}");
                std::process::exit(1);
            });
            if let Some(path) = &args.save {
                let mut file = std::fs::File::create(path).expect("create --save file");
                sharded.save_to(&mut file).expect("persist sharded index");
                eprintln!("saved sharded index to {}", path.display());
            }
            ServedIndex::sharded(sharded)
        } else {
            let index = spec.build(&x).unwrap_or_else(|e| {
                eprintln!("error: build failed: {e}");
                std::process::exit(1);
            });
            if let Some(path) = &args.save {
                let mut file = std::fs::File::create(path).expect("create --save file");
                index.save_to(&mut file).expect("persist index");
                eprintln!("saved index to {}", path.display());
            }
            ServedIndex::single(index, x)
        };
        (served, args.save.clone())
    };

    let mut config = ServerConfig::default();
    if let Some(workers) = args.workers {
        config.workers = workers;
    }
    if let Some(depth) = args.queue_depth {
        config.queue_depth = depth;
    }
    if let Some(ms) = args.slow_query_ms {
        config.slow_query_threshold = Duration::from_millis(ms);
    }
    eprintln!(
        "serving {} (corpus n = {}, index {} MB)",
        served.name(),
        served.corpus_len(),
        served.size_bytes() / (1 << 20)
    );
    let server = Server::bind(
        (args.host.as_str(), args.port),
        served,
        reload_path,
        &config,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: bind failed: {e}");
        std::process::exit(1);
    });
    println!(
        "listening on {} ({} workers, queue depth {})",
        server.local_addr(),
        config.workers,
        config.queue_depth
    );
    // Periodic metrics dump: a detached reporter thread scrapes the merged
    // snapshot (never touching the hot path) and prints the text rendering
    // to stderr. It exits promptly once the server shuts down.
    let reporter = args.metrics_interval.map(|seconds| {
        let handle = server.metrics_handle();
        std::thread::spawn(move || {
            let tick = Duration::from_millis(200);
            let mut elapsed = Duration::ZERO;
            while !handle.is_shutdown() {
                std::thread::sleep(tick);
                elapsed += tick;
                if elapsed >= Duration::from_secs(seconds) {
                    elapsed = Duration::ZERO;
                    eprintln!("{}", handle.snapshot().dump());
                }
            }
        })
    });
    server.join();
    if let Some(reporter) = reporter {
        let _ = reporter.join();
    }
    if let (Some(live), Some(dir)) = (&live_handle, &args.live_dir) {
        match live.save_to_dir(dir) {
            Ok(()) => eprintln!("saved live state to {}", dir.display()),
            Err(e) => eprintln!("error: saving live state to {} failed: {e}", dir.display()),
        }
    }
    eprintln!("server shut down");
}
