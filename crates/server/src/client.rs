//! A small blocking client for the wire protocol — what the tests, the
//! examples and the serve benchmark talk to the server with.
//!
//! The client is resilient by configuration: [`ClientConfig`] carries
//! connect/read/write deadlines and a bounded exponential-backoff retry
//! budget. Retries apply only to *idempotent* requests (`PING`, `QUERY`,
//! `STATS`, `METRICS`) — a mutation is never resent automatically, because a lost
//! response leaves the client unable to tell whether the server applied
//! it. `OVERLOADED` refusals and transport failures are the retryable
//! conditions; on a transport failure the client reconnects before the
//! next attempt.

use crate::metrics::MetricsSnapshot;
use crate::protocol::{
    decode_response, encode_request, read_frame, ErrorCode, LiveSnapshot, ProtocolError, Request,
    Response, ResultMode, StatsSnapshot, MAX_RESPONSE_FRAME,
};
use ius_query::QueryStats;
use ius_weighted::WeightedString;
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Deadlines and retry budget of a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-address connect deadline (`None` = the OS default).
    pub connect_timeout: Option<Duration>,
    /// Blocking-read deadline; a stalled server surfaces as a transport
    /// error instead of hanging the caller (`None` = wait forever).
    pub read_timeout: Option<Duration>,
    /// Blocking-write deadline (`None` = wait forever).
    pub write_timeout: Option<Duration>,
    /// Retries *after* the first attempt for idempotent requests. 0
    /// disables retrying entirely.
    pub max_retries: u32,
    /// First retry delay; attempt `k` sleeps `backoff_base * 2^k`.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_max: Duration,
}

impl Default for ClientConfig {
    /// Deadlines on, retries off: calls cannot hang forever, and no
    /// request is ever silently resent unless the caller opts in.
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_retries: 0,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
        }
    }
}

/// Errors of one client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes EOF mid-response).
    Io(io::Error),
    /// The server's bytes did not decode as a protocol frame.
    Protocol(ProtocolError),
    /// The server answered with a typed error frame.
    Server {
        /// The typed error code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server answered a different request than the one sent.
    IdMismatch {
        /// Id the client sent.
        sent: u64,
        /// Id the response carried.
        got: u64,
    },
    /// The response decoded fine but has the wrong shape for the request
    /// (e.g. a `Count` answer to a collect query).
    UnexpectedResponse {
        /// What the call expected.
        expected: &'static str,
    },
    /// An idempotent request kept failing retryably until the configured
    /// retry budget ran out.
    RetriesExhausted {
        /// Attempts made (first try plus retries).
        attempts: u32,
        /// The failure of the final attempt.
        last: Box<ClientError>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused the request: {code}: {message}")
            }
            ClientError::IdMismatch { sent, got } => {
                write!(f, "response id {got} does not match request id {sent}")
            }
            ClientError::UnexpectedResponse { expected } => {
                write!(
                    f,
                    "response shape does not match the request (expected {expected})"
                )
            }
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            ClientError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A query answer: the delivered positions plus the engine counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Sorted, deduplicated occurrence positions (all of them in collect
    /// mode, the `k` smallest in first-`k` mode).
    pub positions: Vec<usize>,
    /// The engine's per-query counters.
    pub stats: QueryStats,
}

/// A blocking connection to one server. Requests are answered in order on
/// the connection; ids are attached and checked automatically.
pub struct Client {
    stream: TcpStream,
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    next_id: u64,
    send_buf: Vec<u8>,
    recv_buf: Vec<u8>,
}

impl Client {
    /// Connects to a server with the default deadlines and no retries.
    ///
    /// # Errors
    ///
    /// Socket errors of the connect.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a server with explicit deadlines and retry budget.
    ///
    /// # Errors
    ///
    /// Socket errors of the connect (each resolved address is tried once;
    /// the connect itself is not retried — callers that want that loop
    /// over `connect_with`).
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = Client::open_stream(&addrs, &config)?;
        Ok(Client {
            stream,
            addrs,
            config,
            next_id: 1,
            send_buf: Vec::new(),
            recv_buf: Vec::new(),
        })
    }

    /// Opens, tunes, and returns a stream to the first reachable address.
    fn open_stream(addrs: &[SocketAddr], config: &ClientConfig) -> io::Result<TcpStream> {
        let mut last_err = None;
        for addr in addrs {
            let attempt = match config.connect_timeout {
                Some(deadline) => TcpStream::connect_timeout(addr, deadline),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(config.read_timeout)?;
                    stream.set_write_timeout(config.write_timeout)?;
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to no socket addresses",
            )
        }))
    }

    /// Replaces a (presumed broken) connection with a fresh one.
    fn reconnect(&mut self) -> io::Result<()> {
        self.stream = Client::open_stream(&self.addrs, &self.config)?;
        Ok(())
    }

    /// Whether a failure is safe and useful to retry: the transport broke
    /// (timeout, reset, EOF — the request may never have arrived), or the
    /// server refused admission with `OVERLOADED` (it never looked at the
    /// request).
    fn retryable(error: &ClientError) -> bool {
        matches!(
            error,
            ClientError::Io(_)
                | ClientError::Server {
                    code: ErrorCode::Overloaded,
                    ..
                }
        )
    }

    /// [`Client::call`] plus the bounded-backoff retry loop — only for
    /// requests that are safe to resend.
    fn call_idempotent(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            let error = match self.call(request) {
                Ok(response) => return Ok(response),
                Err(e) if Client::retryable(&e) => e,
                Err(e) => return Err(e),
            };
            if attempt >= self.config.max_retries {
                return Err(if attempt == 0 {
                    // Retrying was off; surface the plain failure.
                    error
                } else {
                    ClientError::RetriesExhausted {
                        attempts: attempt + 1,
                        last: Box::new(error),
                    }
                });
            }
            let backoff = self
                .config
                .backoff_base
                .saturating_mul(1u32 << attempt.min(16))
                .min(self.config.backoff_max);
            std::thread::sleep(backoff);
            if matches!(error, ClientError::Io(_)) {
                // The connection is suspect; a failed reconnect just
                // burns this attempt and backs off again.
                let _ = self.reconnect();
            }
            attempt += 1;
        }
    }

    /// One request/response round trip.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        encode_request(id, request, &mut self.send_buf);
        self.stream.write_all(&self.send_buf)?;
        if !read_frame(&mut self.stream, MAX_RESPONSE_FRAME, &mut self.recv_buf)? {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            )));
        }
        let (got_id, response) = decode_response(&self.recv_buf)?;
        // Typed refusals that predate request parsing (overload, shutdown,
        // header-level garbage) carry id 0.
        if got_id != id && got_id != 0 {
            return Err(ClientError::IdMismatch {
                sent: id,
                got: got_id,
            });
        }
        if let Response::Error { code, message } = response {
            return Err(ClientError::Server { code, message });
        }
        Ok(response)
    }

    /// Liveness probe. Idempotent: retried under the configured budget.
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors;
    /// [`ClientError::RetriesExhausted`] when a retry budget ran dry.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call_idempotent(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::UnexpectedResponse { expected: "PONG" }),
        }
    }

    /// Reports every occurrence of `pattern` (collect mode).
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors (including the
    /// engine's pattern contract as [`ClientError::Server`] with
    /// [`ErrorCode::Query`]).
    pub fn query(&mut self, pattern: &[u8]) -> Result<QueryOutcome, ClientError> {
        self.query_mode(pattern, ResultMode::Collect)
    }

    /// Reports the `k` smallest occurrences of `pattern`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::query`].
    pub fn query_first_k(&mut self, pattern: &[u8], k: u64) -> Result<QueryOutcome, ClientError> {
        self.query_mode(pattern, ResultMode::FirstK(k))
    }

    fn query_mode(
        &mut self,
        pattern: &[u8],
        mode: ResultMode,
    ) -> Result<QueryOutcome, ClientError> {
        let request = Request::Query {
            mode,
            pattern: pattern.to_vec(),
        };
        match self.call_idempotent(&request)? {
            Response::Matches { stats, positions } => Ok(QueryOutcome {
                positions: positions.into_iter().map(|p| p as usize).collect(),
                stats: stats.into(),
            }),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "MATCHES",
            }),
        }
    }

    /// Counts the occurrences of `pattern` without materialising them.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::query`].
    pub fn query_count(&mut self, pattern: &[u8]) -> Result<(u64, QueryStats), ClientError> {
        let request = Request::Query {
            mode: ResultMode::Count,
            pattern: pattern.to_vec(),
        };
        match self.call_idempotent(&request)? {
            Response::Count { stats, count } => Ok((count, stats.into())),
            _ => Err(ClientError::UnexpectedResponse { expected: "COUNT" }),
        }
    }

    /// Fetches the server's metrics snapshot. Idempotent: retried under
    /// the configured budget.
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors;
    /// [`ClientError::RetriesExhausted`] when a retry budget ran dry.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call_idempotent(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            _ => Err(ClientError::UnexpectedResponse { expected: "STATS" }),
        }
    }

    /// Scrapes the server's observability snapshot (per-stage query
    /// histograms, queue-wait/service split, live and WAL timings, slow
    /// queries). Idempotent: retried under the configured budget. An old
    /// server that predates the op refuses it typed
    /// ([`ErrorCode::UnknownOp`]) and keeps the connection usable.
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors;
    /// [`ClientError::RetriesExhausted`] when a retry budget ran dry.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        match self.call_idempotent(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "METRICS",
            }),
        }
    }

    /// Drains a snapshot of the server's flight recorder: the most recent
    /// sampled request traces plus the pinned error traces, as span trees.
    /// Non-destructive on the server side. Idempotent: retried under the
    /// configured budget. An old server that predates the op refuses it
    /// typed ([`ErrorCode::UnknownOp`]) and keeps the connection usable.
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors;
    /// [`ClientError::RetriesExhausted`] when a retry budget ran dry.
    pub fn trace_dump(&mut self) -> Result<Vec<crate::flight::TraceRecordSnapshot>, ClientError> {
        match self.call_idempotent(&Request::TraceDump)? {
            Response::TraceDump { records, .. } => Ok(records),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "TRACE_DUMP",
            }),
        }
    }

    /// Hot-reloads the served index from `path` (or the server's startup
    /// path when `None`); returns the new generation.
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors
    /// ([`ErrorCode::Reload`] when the file is missing or corrupt).
    pub fn reload(&mut self, path: Option<&str>) -> Result<u64, ClientError> {
        let request = Request::Reload {
            path: path.map(str::to_owned),
        };
        match self.call(&request)? {
            Response::Reloaded { generation } => Ok(generation),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "RELOADED",
            }),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "SHUTTING_DOWN",
            }),
        }
    }

    fn live_call(&mut self, request: &Request) -> Result<LiveSnapshot, ClientError> {
        match self.call(request)? {
            Response::Live(snapshot) => Ok(snapshot),
            _ => Err(ClientError::UnexpectedResponse { expected: "LIVE" }),
        }
    }

    /// Appends a batch of weighted positions to a live corpus; the rows
    /// are visible to the very next query. Refused with
    /// [`ErrorCode::Live`] by a server that does not serve a live index.
    ///
    /// Note the request-frame bound: a batch must fit in
    /// [`crate::protocol::MAX_REQUEST_FRAME`] (split large appends into
    /// several calls).
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors.
    pub fn append(&mut self, batch: &WeightedString) -> Result<LiveSnapshot, ClientError> {
        self.append_rows(batch.sigma() as u64, batch.flat_probs().to_vec())
    }

    /// Appends raw row-major probability rows (`rows × sigma` values) —
    /// the allocation-explicit variant of [`Client::append`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::append`].
    pub fn append_rows(
        &mut self,
        sigma: u64,
        probs: Vec<f64>,
    ) -> Result<LiveSnapshot, ClientError> {
        self.live_call(&Request::Append { sigma, probs })
    }

    /// Tombstones the logical range `[start, end)` of a live corpus:
    /// every occurrence whose window intersects it disappears from
    /// results (positions are never renumbered).
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::append`].
    pub fn delete_range(&mut self, start: u64, end: u64) -> Result<LiveSnapshot, ClientError> {
        self.live_call(&Request::DeleteRange { start, end })
    }

    /// Freezes the live memtable into segment(s); `changed` in the answer
    /// is the number of segments created (0 when the memtable held only
    /// the overlap).
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::append`].
    pub fn flush(&mut self) -> Result<LiveSnapshot, ClientError> {
        self.live_call(&Request::Flush)
    }

    /// Runs live compaction — one tiered round, or a full merge-all —
    /// and reports the merges performed in `changed`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::append`].
    pub fn compact(&mut self, full: bool) -> Result<LiveSnapshot, ClientError> {
        self.live_call(&Request::Compact { full })
    }
}
