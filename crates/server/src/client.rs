//! A small blocking client for the wire protocol — what the tests, the
//! examples and the serve benchmark talk to the server with.

use crate::protocol::{
    decode_response, encode_request, read_frame, ErrorCode, LiveSnapshot, ProtocolError, Request,
    Response, ResultMode, StatsSnapshot, MAX_RESPONSE_FRAME,
};
use ius_query::QueryStats;
use ius_weighted::WeightedString;
use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors of one client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes EOF mid-response).
    Io(io::Error),
    /// The server's bytes did not decode as a protocol frame.
    Protocol(ProtocolError),
    /// The server answered with a typed error frame.
    Server {
        /// The typed error code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server answered a different request than the one sent.
    IdMismatch {
        /// Id the client sent.
        sent: u64,
        /// Id the response carried.
        got: u64,
    },
    /// The response decoded fine but has the wrong shape for the request
    /// (e.g. a `Count` answer to a collect query).
    UnexpectedResponse {
        /// What the call expected.
        expected: &'static str,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused the request: {code}: {message}")
            }
            ClientError::IdMismatch { sent, got } => {
                write!(f, "response id {got} does not match request id {sent}")
            }
            ClientError::UnexpectedResponse { expected } => {
                write!(
                    f,
                    "response shape does not match the request (expected {expected})"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A query answer: the delivered positions plus the engine counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Sorted, deduplicated occurrence positions (all of them in collect
    /// mode, the `k` smallest in first-`k` mode).
    pub positions: Vec<usize>,
    /// The engine's per-query counters.
    pub stats: QueryStats,
}

/// A blocking connection to one server. Requests are answered in order on
/// the connection; ids are attached and checked automatically.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    send_buf: Vec<u8>,
    recv_buf: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Socket errors of the connect.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 1,
            send_buf: Vec::new(),
            recv_buf: Vec::new(),
        })
    }

    /// One request/response round trip.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        encode_request(id, request, &mut self.send_buf);
        self.stream.write_all(&self.send_buf)?;
        if !read_frame(&mut self.stream, MAX_RESPONSE_FRAME, &mut self.recv_buf)? {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            )));
        }
        let (got_id, response) = decode_response(&self.recv_buf)?;
        // Typed refusals that predate request parsing (overload, shutdown,
        // header-level garbage) carry id 0.
        if got_id != id && got_id != 0 {
            return Err(ClientError::IdMismatch {
                sent: id,
                got: got_id,
            });
        }
        if let Response::Error { code, message } = response {
            return Err(ClientError::Server { code, message });
        }
        Ok(response)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::UnexpectedResponse { expected: "PONG" }),
        }
    }

    /// Reports every occurrence of `pattern` (collect mode).
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors (including the
    /// engine's pattern contract as [`ClientError::Server`] with
    /// [`ErrorCode::Query`]).
    pub fn query(&mut self, pattern: &[u8]) -> Result<QueryOutcome, ClientError> {
        self.query_mode(pattern, ResultMode::Collect)
    }

    /// Reports the `k` smallest occurrences of `pattern`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::query`].
    pub fn query_first_k(&mut self, pattern: &[u8], k: u64) -> Result<QueryOutcome, ClientError> {
        self.query_mode(pattern, ResultMode::FirstK(k))
    }

    fn query_mode(
        &mut self,
        pattern: &[u8],
        mode: ResultMode,
    ) -> Result<QueryOutcome, ClientError> {
        let request = Request::Query {
            mode,
            pattern: pattern.to_vec(),
        };
        match self.call(&request)? {
            Response::Matches { stats, positions } => Ok(QueryOutcome {
                positions: positions.into_iter().map(|p| p as usize).collect(),
                stats: stats.into(),
            }),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "MATCHES",
            }),
        }
    }

    /// Counts the occurrences of `pattern` without materialising them.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::query`].
    pub fn query_count(&mut self, pattern: &[u8]) -> Result<(u64, QueryStats), ClientError> {
        let request = Request::Query {
            mode: ResultMode::Count,
            pattern: pattern.to_vec(),
        };
        match self.call(&request)? {
            Response::Count { stats, count } => Ok((count, stats.into())),
            _ => Err(ClientError::UnexpectedResponse { expected: "COUNT" }),
        }
    }

    /// Fetches the server's metrics snapshot.
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            _ => Err(ClientError::UnexpectedResponse { expected: "STATS" }),
        }
    }

    /// Hot-reloads the served index from `path` (or the server's startup
    /// path when `None`); returns the new generation.
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors
    /// ([`ErrorCode::Reload`] when the file is missing or corrupt).
    pub fn reload(&mut self, path: Option<&str>) -> Result<u64, ClientError> {
        let request = Request::Reload {
            path: path.map(str::to_owned),
        };
        match self.call(&request)? {
            Response::Reloaded { generation } => Ok(generation),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "RELOADED",
            }),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "SHUTTING_DOWN",
            }),
        }
    }

    fn live_call(&mut self, request: &Request) -> Result<LiveSnapshot, ClientError> {
        match self.call(request)? {
            Response::Live(snapshot) => Ok(snapshot),
            _ => Err(ClientError::UnexpectedResponse { expected: "LIVE" }),
        }
    }

    /// Appends a batch of weighted positions to a live corpus; the rows
    /// are visible to the very next query. Refused with
    /// [`ErrorCode::Live`] by a server that does not serve a live index.
    ///
    /// Note the request-frame bound: a batch must fit in
    /// [`crate::protocol::MAX_REQUEST_FRAME`] (split large appends into
    /// several calls).
    ///
    /// # Errors
    ///
    /// Transport, protocol and server-refusal errors.
    pub fn append(&mut self, batch: &WeightedString) -> Result<LiveSnapshot, ClientError> {
        self.append_rows(batch.sigma() as u64, batch.flat_probs().to_vec())
    }

    /// Appends raw row-major probability rows (`rows × sigma` values) —
    /// the allocation-explicit variant of [`Client::append`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::append`].
    pub fn append_rows(
        &mut self,
        sigma: u64,
        probs: Vec<f64>,
    ) -> Result<LiveSnapshot, ClientError> {
        self.live_call(&Request::Append { sigma, probs })
    }

    /// Tombstones the logical range `[start, end)` of a live corpus:
    /// every occurrence whose window intersects it disappears from
    /// results (positions are never renumbered).
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::append`].
    pub fn delete_range(&mut self, start: u64, end: u64) -> Result<LiveSnapshot, ClientError> {
        self.live_call(&Request::DeleteRange { start, end })
    }

    /// Freezes the live memtable into segment(s); `changed` in the answer
    /// is the number of segments created (0 when the memtable held only
    /// the overlap).
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::append`].
    pub fn flush(&mut self) -> Result<LiveSnapshot, ClientError> {
        self.live_call(&Request::Flush)
    }

    /// Runs live compaction — one tiered round, or a full merge-all —
    /// and reports the merges performed in `changed`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::append`].
    pub fn compact(&mut self, full: bool) -> Result<LiveSnapshot, ClientError> {
        self.live_call(&Request::Compact { full })
    }
}
