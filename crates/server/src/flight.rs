//! The flight recorder: fixed-capacity rings of the most recent *complete*
//! request traces, drained over the `TRACE_DUMP` wire op and dumped to
//! stderr when a worker dies.
//!
//! Sampled requests (the same 1-in-N ticket discipline as the stage
//! histograms) record a span tree into their worker's thread-local
//! [`ius_obs::trace`] buffer; when the response has been written the
//! finished trace is copied — one fixed-size `Copy`, no allocation — into
//! the recorder:
//!
//! * the **recent ring** ([`FLIGHT_RECENT_CAPACITY`] slots) holds the
//!   newest completed traces, slow or fast — a flight recorder is for
//!   reconstructing *what the server was doing*, not only its outliers;
//! * the **pinned ring** ([`FLIGHT_PINNED_CAPACITY`] slots) holds
//!   error-tagged traces (typed refusals, query/live errors) separately,
//!   so the last K failures survive churn from the healthy traffic that
//!   follows them.
//!
//! Both rings sit behind one mutex. That is deliberate: only sampled
//! requests push (so the lock is taken at 1/16th of the request rate, by
//! design off the un-sampled hot path), and a scrape copies everything out
//! under the same lock. The recording path never allocates — the rings are
//! preallocated at construction and a push is a slot overwrite.

use ius_obs::fmt_ns;
use ius_obs::trace::{stage_name, Span, SpanBuffer, MAX_SPANS};
use std::sync::Mutex;

/// Slots in the recent-trace ring.
pub const FLIGHT_RECENT_CAPACITY: usize = 64;

/// Slots in the pinned error-trace ring.
pub const FLIGHT_PINNED_CAPACITY: usize = 16;

/// `error` byte of a trace that completed without a typed error frame.
pub const TRACE_NO_ERROR: u8 = u8::MAX;

/// One completed trace as it crosses the wire (and as tests inspect it):
/// the request identity plus the span tree in pre-order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceRecordSnapshot {
    /// Process-unique trace id ([`ius_obs::trace::next_trace_id`]).
    pub trace_id: u64,
    /// The request's op byte.
    pub op: u8,
    /// The `ErrorCode` byte of the typed error frame this request was
    /// answered with, or [`TRACE_NO_ERROR`].
    pub error: u8,
    /// Absolute `clock::now_ns` when the trace armed.
    pub started_ns: u64,
    /// Total service time of the request (read-to-write).
    pub total_ns: u64,
    /// Whether spans were dropped for capacity or depth.
    pub truncated: bool,
    /// Whether this record came from the pinned error ring.
    pub pinned: bool,
    /// The span tree, pre-order with explicit depths.
    pub spans: Vec<Span>,
}

impl TraceRecordSnapshot {
    /// Renders the trace tree as indented text, one span per line.
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace {} op={} total={}{}{}\n",
            self.trace_id,
            crate::metrics::op_name(self.op),
            fmt_ns(self.total_ns),
            if self.error != TRACE_NO_ERROR {
                format!(" error={}", self.error)
            } else {
                String::new()
            },
            if self.truncated { " (truncated)" } else { "" },
        );
        for span in &self.spans {
            out.push_str(&format!(
                "{:indent$}{} {} a={} b={}\n",
                "",
                stage_name(span.code),
                fmt_ns(span.dur_ns),
                span.a,
                span.b,
                indent = 2 * (span.depth as usize + 1),
            ));
        }
        out
    }
}

/// Point-in-time ring occupancy, surfaced as gauges by the metrics dump so
/// ring sizing is visible without a `TRACE_DUMP` scrape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightOccupancy {
    /// Occupied recent-ring slots.
    pub recent: u64,
    /// Recent-ring capacity.
    pub recent_capacity: u64,
    /// Occupied pinned-ring slots.
    pub pinned: u64,
    /// Pinned-ring capacity.
    pub pinned_capacity: u64,
}

/// One ring slot: everything inline so a push is a plain `Copy`.
#[derive(Clone, Copy)]
struct FixedRecord {
    trace_id: u64,
    op: u8,
    error: u8,
    started_ns: u64,
    total_ns: u64,
    truncated: bool,
    len: u16,
    spans: [Span; MAX_SPANS],
}

impl FixedRecord {
    const EMPTY: FixedRecord = FixedRecord {
        trace_id: 0,
        op: 0,
        error: TRACE_NO_ERROR,
        started_ns: 0,
        total_ns: 0,
        truncated: false,
        len: 0,
        spans: [Span::EMPTY; MAX_SPANS],
    };

    fn snapshot(&self, pinned: bool) -> TraceRecordSnapshot {
        TraceRecordSnapshot {
            trace_id: self.trace_id,
            op: self.op,
            error: self.error,
            started_ns: self.started_ns,
            total_ns: self.total_ns,
            truncated: self.truncated,
            pinned,
            spans: self.spans[..self.len as usize].to_vec(),
        }
    }
}

struct Ring {
    slots: Box<[FixedRecord]>,
    next: usize,
    len: usize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            slots: vec![FixedRecord::EMPTY; capacity.max(1)].into_boxed_slice(),
            next: 0,
            len: 0,
        }
    }

    fn push(&mut self, record: &FixedRecord) {
        self.slots[self.next] = *record;
        self.next = (self.next + 1) % self.slots.len();
        self.len = (self.len + 1).min(self.slots.len());
    }

    /// Occupied slots, oldest first.
    fn iter_oldest_first(&self) -> impl Iterator<Item = &FixedRecord> {
        let cap = self.slots.len();
        let start = (self.next + cap - self.len) % cap;
        (0..self.len).map(move |i| &self.slots[(start + i) % cap])
    }
}

struct Inner {
    recent: Ring,
    pinned: Ring,
}

/// The server's trace rings. See the module docs.
///
/// Every lock recovers from poisoning: the panic-hook stderr dump renders
/// the recorder *from a panicking process*, and the slots are plain old
/// data (worst case one half-overwritten record), so refusing to read
/// after a mid-push panic would defeat the recorder's purpose.
pub struct FlightRecorder {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let occ = self.occupancy();
        f.debug_struct("FlightRecorder")
            .field("recent", &occ.recent)
            .field("pinned", &occ.pinned)
            .finish()
    }
}

impl FlightRecorder {
    /// Creates empty rings at the default capacities (preallocated; the
    /// recording path never allocates after this).
    pub fn new() -> Self {
        Self::with_capacity(FLIGHT_RECENT_CAPACITY, FLIGHT_PINNED_CAPACITY)
    }

    /// Creates empty rings at explicit capacities (both at least 1).
    pub fn with_capacity(recent: usize, pinned: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                recent: Ring::new(recent),
                pinned: Ring::new(pinned),
            }),
        }
    }

    /// Records one finished trace: error-tagged traces go to the pinned
    /// ring, the rest to the recent ring. Allocation-free (one lock plus a
    /// fixed-size copy).
    pub fn record(&self, buf: &SpanBuffer, op: u8, error: u8, total_ns: u64) {
        let mut record = FixedRecord {
            trace_id: buf.trace_id(),
            op,
            error,
            started_ns: buf.started_ns(),
            total_ns,
            truncated: buf.truncated(),
            len: buf.spans().len() as u16,
            spans: [Span::EMPTY; MAX_SPANS],
        };
        let spans = buf.spans();
        record.spans[..spans.len()].copy_from_slice(spans);
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if error != TRACE_NO_ERROR {
            inner.pinned.push(&record);
        } else {
            inner.recent.push(&record);
        }
    }

    /// Copies every surviving trace out: pinned errors first (oldest
    /// first), then the recent ring (oldest first). Non-destructive — a
    /// dump is a snapshot, not a drain, so two monitors never race each
    /// other for the data.
    pub fn snapshot(&self) -> Vec<TraceRecordSnapshot> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = Vec::with_capacity(inner.pinned.len + inner.recent.len);
        out.extend(inner.pinned.iter_oldest_first().map(|r| r.snapshot(true)));
        out.extend(inner.recent.iter_oldest_first().map(|r| r.snapshot(false)));
        out
    }

    /// Current ring occupancy.
    pub fn occupancy(&self) -> FlightOccupancy {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        FlightOccupancy {
            recent: inner.recent.len as u64,
            recent_capacity: inner.recent.slots.len() as u64,
            pinned: inner.pinned.len as u64,
            pinned_capacity: inner.pinned.slots.len() as u64,
        }
    }

    /// Renders every surviving trace (the panic-hook stderr dump).
    pub fn render(&self) -> String {
        let records = self.snapshot();
        let mut out = format!("== ius flight recorder: {} trace(s) ==\n", records.len());
        for record in &records {
            out.push_str(&record.render());
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ius_obs::{clock, trace};

    fn sample_trace(id: u64) -> SpanBuffer {
        clock::set_enabled(true);
        let mut buf = SpanBuffer::new();
        assert!(buf.begin(id));
        buf.leaf(trace::STAGE_QUEUE_WAIT, 500, 0, 0);
        buf.enter(trace::STAGE_QUERY);
        buf.exit_with(3, 2);
        buf
    }

    #[test]
    fn recent_ring_overwrites_oldest_and_reports_oldest_first() {
        let recorder = FlightRecorder::with_capacity(3, 2);
        for id in 1..=5u64 {
            recorder.record(&sample_trace(id), 1, TRACE_NO_ERROR, 10 * id);
        }
        let records = recorder.snapshot();
        assert_eq!(
            records.iter().map(|r| r.trace_id).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "capacity 3 keeps the newest three, oldest first"
        );
        assert!(records.iter().all(|r| !r.pinned));
        assert_eq!(records[0].spans.len(), 2);
        assert_eq!(records[0].spans[1].a, 3);
        let occ = recorder.occupancy();
        assert_eq!((occ.recent, occ.recent_capacity), (3, 3));
        assert_eq!((occ.pinned, occ.pinned_capacity), (0, 2));
    }

    #[test]
    fn error_traces_are_pinned_and_survive_recent_churn() {
        let recorder = FlightRecorder::with_capacity(2, 2);
        recorder.record(&sample_trace(100), 1, 3, 1_000); // QUERY_ERROR byte
        for id in 1..=10u64 {
            recorder.record(&sample_trace(id), 1, TRACE_NO_ERROR, 10);
        }
        let records = recorder.snapshot();
        assert_eq!(records.len(), 3);
        assert!(records[0].pinned);
        assert_eq!(records[0].trace_id, 100);
        assert_eq!(records[0].error, 3);
        assert_eq!(
            records[1..].iter().map(|r| r.trace_id).collect::<Vec<_>>(),
            vec![9, 10]
        );
    }

    #[test]
    fn render_includes_stage_names_and_error_tags() {
        let recorder = FlightRecorder::new();
        recorder.record(&sample_trace(7), 1, TRACE_NO_ERROR, 42_000);
        recorder.record(&sample_trace(8), 1, 3, 9_000);
        let text = recorder.render();
        for needle in ["flight recorder: 2", "queue_wait", "query", "error=3"] {
            assert!(text.contains(needle), "render missing {needle:?}:\n{text}");
        }
    }
}
