//! # ius-server — the serving subsystem
//!
//! Turns the library into a runnable system: a **std-only** concurrent TCP
//! server (no async runtime — consistent with the workspace's offline
//! shim-crate policy) that loads persisted indexes (`ius_index::persist`,
//! single-machine or sharded) and answers pattern queries over a
//! length-prefixed binary wire protocol.
//!
//! * [`protocol`] — the wire format: magic + version + request id + op,
//!   with `QUERY` (collect / count / first-`k` result modes mapping onto
//!   the `ius_query` sinks), `STATS`, `PING`, `RELOAD` and `SHUTDOWN`,
//!   and typed error frames for every malformed or refused input;
//! * [`Server`] — acceptor + fixed worker pool (one [`QueryScratch`] per
//!   worker, so steady-state serving is allocation-free on the hot path),
//!   bounded admission queue with `OVERLOADED` backpressure, atomic
//!   `Arc`-swap hot reload that never drops in-flight requests, graceful
//!   shutdown;
//! * [`Client`] — a small blocking client used by the tests, the examples
//!   and `reproduce --bench-serve`;
//! * the `serve` binary — loads (or builds) an index and serves it.
//!
//! ```no_run
//! use ius_server::{Client, ServedIndex, Server, ServerConfig};
//! use std::path::Path;
//!
//! // Serve a self-contained sharded index file on an ephemeral port.
//! let served = ServedIndex::load(Path::new("index.iusx"), None)?;
//! let server = Server::bind("127.0.0.1:0", served, None, &ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let hits = client.query(&[0, 1, 2, 3])?;
//! println!("{} occurrences", hits.positions.len());
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`QueryScratch`]: ius_query::QueryScratch

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod flight;
pub mod metrics;
mod pool;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientConfig, ClientError, QueryOutcome};
pub use flight::{
    FlightOccupancy, FlightRecorder, TraceRecordSnapshot, FLIGHT_PINNED_CAPACITY,
    FLIGHT_RECENT_CAPACITY, TRACE_NO_ERROR,
};
pub use metrics::{
    DurabilityView, LiveObsView, MetricsSnapshot, RingOccupancy, ServerMetrics, SlowQueryEntry,
    SlowRing, WorkerObs, SLOW_QUERY_PREFIX_LEN,
};
pub use protocol::{
    ErrorCode, LiveSnapshot, ProtocolError, Request, Response, ResultMode, StatsSnapshot,
    WireStats, MAX_REQUEST_FRAME, MAX_RESPONSE_FRAME, METRICS_FORMAT_VERSION, TRACE_FORMAT_VERSION,
    WIRE_MAGIC, WIRE_VERSION,
};
pub use server::{MetricsHandle, ServedIndex, Server, ServerConfig};
