//! Lock-free server counters, snapshotted into the wire-level
//! [`StatsSnapshot`] on a `STATS` request.

use crate::protocol::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters shared by the acceptor and every worker. All updates
/// are relaxed atomics — the counters are operational telemetry, not
/// synchronization.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted (admitted or refused).
    pub connections: AtomicU64,
    /// Frames read off admitted connections.
    pub requests: AtomicU64,
    /// Queries answered successfully.
    pub queries: AtomicU64,
    /// Occurrence positions delivered over all queries.
    pub occurrences: AtomicU64,
    /// Frames answered with a protocol-level error.
    pub protocol_errors: AtomicU64,
    /// Well-formed queries rejected by the engine (pattern contract).
    pub query_errors: AtomicU64,
    /// Connections refused with `OVERLOADED`.
    pub overloaded: AtomicU64,
    /// Successful hot reloads.
    pub reloads: AtomicU64,
    /// Positions appended to a live corpus via `APPEND`.
    pub appended_positions: AtomicU64,
    /// Successful `DELETE_RANGE` requests.
    pub delete_ranges: AtomicU64,
    /// `FLUSH` requests that froze at least one segment (append-triggered
    /// auto-flushes are internal to the live index and not counted here).
    pub flushes: AtomicU64,
    /// `COMPACT` requests that merged at least one run.
    pub compactions: AtomicU64,
    /// Live mutations refused or failed with a typed `LIVE_ERROR` frame.
    pub live_errors: AtomicU64,
}

/// Durability counters sampled from the served live index at `STATS` time.
/// Static servers (and live servers with durability off) use the zeroed
/// [`Default`] view.
#[derive(Debug, Clone, Default)]
pub struct DurabilityView {
    /// Mutations logged to the write-ahead log.
    pub wal_records: u64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Crash recoveries performed when the live directory was opened.
    pub recoveries: u64,
    /// Mutation records replayed from the log during recovery.
    pub recovered_records: u64,
    /// Active fsync policy code (0 off, 1 record, 2 interval, 3 never).
    pub fsync_policy: u64,
    /// Background compaction passes that failed.
    pub compaction_errors: u64,
    /// Most recent background/durability failure, if any.
    pub last_error: Option<String>,
}

impl ServerMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Projects the counters plus the given serving context into the wire
    /// snapshot.
    #[allow(clippy::too_many_arguments)]
    pub fn snapshot(
        &self,
        index_name: String,
        generation: u64,
        corpus_len: u64,
        index_size_bytes: u64,
        workers: u64,
        queue_depth: u64,
        durability: DurabilityView,
    ) -> StatsSnapshot {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            index_name,
            generation,
            corpus_len,
            index_size_bytes,
            workers,
            queue_depth,
            connections: read(&self.connections),
            requests: read(&self.requests),
            queries: read(&self.queries),
            occurrences: read(&self.occurrences),
            protocol_errors: read(&self.protocol_errors),
            query_errors: read(&self.query_errors),
            overloaded: read(&self.overloaded),
            reloads: read(&self.reloads),
            appended_positions: read(&self.appended_positions),
            delete_ranges: read(&self.delete_ranges),
            flushes: read(&self.flushes),
            compactions: read(&self.compactions),
            live_errors: read(&self.live_errors),
            wal_records: durability.wal_records,
            wal_bytes: durability.wal_bytes,
            recoveries: durability.recoveries,
            recovered_records: durability.recovered_records,
            fsync_policy: durability.fsync_policy,
            compaction_errors: durability.compaction_errors,
            last_error: durability.last_error.unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters_and_context() {
        let metrics = ServerMetrics::new();
        ServerMetrics::inc(&metrics.connections);
        ServerMetrics::add(&metrics.occurrences, 41);
        ServerMetrics::inc(&metrics.occurrences);
        let snap = metrics.snapshot(
            "MWSA".into(),
            2,
            1000,
            4096,
            3,
            16,
            DurabilityView::default(),
        );
        assert_eq!(snap.index_name, "MWSA");
        assert_eq!(snap.generation, 2);
        assert_eq!(snap.corpus_len, 1000);
        assert_eq!(snap.index_size_bytes, 4096);
        assert_eq!(snap.workers, 3);
        assert_eq!(snap.queue_depth, 16);
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.occurrences, 42);
        assert_eq!(snap.requests, 0);
    }
}
