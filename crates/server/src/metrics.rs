//! Lock-free server observability: the flat counters answered to `STATS`,
//! plus the per-worker histogram registries ([`WorkerObs`]) and the typed
//! [`MetricsSnapshot`] answered to `METRICS`.
//!
//! Recording follows the `ius_obs` rule — a few relaxed atomic adds, no
//! locks, no allocation, no syscalls on the hot path. Aggregation happens
//! on the scrape path only: a `METRICS` request merges every worker's
//! registry into one snapshot, so workers never contend with each other
//! or with scrapers.

use crate::flight::FlightOccupancy;
use crate::protocol::StatsSnapshot;
use ius_obs::{clock, Histogram, HistogramSnapshot};
use ius_query::QueryStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotonic counters shared by the acceptor and every worker. All updates
/// are relaxed atomics — the counters are operational telemetry, not
/// synchronization.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted (admitted or refused).
    pub connections: AtomicU64,
    /// Frames read off admitted connections.
    pub requests: AtomicU64,
    /// Queries answered successfully.
    pub queries: AtomicU64,
    /// Occurrence positions delivered over all queries.
    pub occurrences: AtomicU64,
    /// Frames answered with a protocol-level error.
    pub protocol_errors: AtomicU64,
    /// Well-formed queries rejected by the engine (pattern contract).
    pub query_errors: AtomicU64,
    /// Connections refused with `OVERLOADED`.
    pub overloaded: AtomicU64,
    /// Successful hot reloads.
    pub reloads: AtomicU64,
    /// Positions appended to a live corpus via `APPEND`.
    pub appended_positions: AtomicU64,
    /// Successful `DELETE_RANGE` requests.
    pub delete_ranges: AtomicU64,
    /// `FLUSH` requests that froze at least one segment (append-triggered
    /// auto-flushes are internal to the live index and not counted here).
    pub flushes: AtomicU64,
    /// `COMPACT` requests that merged at least one run.
    pub compactions: AtomicU64,
    /// Live mutations refused or failed with a typed `LIVE_ERROR` frame.
    pub live_errors: AtomicU64,
}

/// Durability counters sampled from the served live index at `STATS` time.
/// Static servers (and live servers with durability off) use the zeroed
/// [`Default`] view.
#[derive(Debug, Clone, Default)]
pub struct DurabilityView {
    /// Mutations logged to the write-ahead log.
    pub wal_records: u64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Crash recoveries performed when the live directory was opened.
    pub recoveries: u64,
    /// Mutation records replayed from the log during recovery.
    pub recovered_records: u64,
    /// Active fsync policy code (0 off, 1 record, 2 interval, 3 never).
    pub fsync_policy: u64,
    /// Background compaction passes that failed.
    pub compaction_errors: u64,
    /// Most recent background/durability failure, if any.
    pub last_error: Option<String>,
}

impl ServerMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Projects the counters plus the given serving context into the wire
    /// snapshot.
    #[allow(clippy::too_many_arguments)]
    pub fn snapshot(
        &self,
        index_name: String,
        generation: u64,
        corpus_len: u64,
        index_size_bytes: u64,
        workers: u64,
        queue_depth: u64,
        durability: DurabilityView,
    ) -> StatsSnapshot {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            index_name,
            generation,
            corpus_len,
            index_size_bytes,
            workers,
            queue_depth,
            connections: read(&self.connections),
            requests: read(&self.requests),
            queries: read(&self.queries),
            occurrences: read(&self.occurrences),
            protocol_errors: read(&self.protocol_errors),
            query_errors: read(&self.query_errors),
            overloaded: read(&self.overloaded),
            reloads: read(&self.reloads),
            appended_positions: read(&self.appended_positions),
            delete_ranges: read(&self.delete_ranges),
            flushes: read(&self.flushes),
            compactions: read(&self.compactions),
            live_errors: read(&self.live_errors),
            wal_records: durability.wal_records,
            wal_bytes: durability.wal_bytes,
            recoveries: durability.recoveries,
            recovered_records: durability.recovered_records,
            fsync_policy: durability.fsync_policy,
            compaction_errors: durability.compaction_errors,
            last_error: durability.last_error.unwrap_or_default(),
        }
    }
}

/// Number of request ops the per-op service histograms cover (op bytes
/// `0..OP_SERVICE_SLOTS`).
pub const OP_SERVICE_SLOTS: usize = 11;

/// Display name of a request op byte (for the text dump).
pub fn op_name(op: u8) -> &'static str {
    match op {
        0 => "PING",
        1 => "QUERY",
        2 => "STATS",
        3 => "RELOAD",
        4 => "SHUTDOWN",
        5 => "APPEND",
        6 => "DELETE_RANGE",
        7 => "FLUSH",
        8 => "COMPACT",
        9 => "METRICS",
        10 => "TRACE_DUMP",
        _ => "UNKNOWN",
    }
}

/// One worker's private histogram registry. Each worker records into its
/// own instance (no sharing, no contention); a `METRICS` scrape merges all
/// of them.
#[derive(Debug)]
pub struct WorkerObs {
    /// Minimizer-scan stage nanoseconds per query.
    pub query_scan: Histogram,
    /// Locate (`equal_range` / trie descent) stage nanoseconds per query.
    pub query_locate: Histogram,
    /// Verification (grid report + probability checks) nanoseconds.
    pub query_verify: Histogram,
    /// Reporting (sort/dedup/stream) nanoseconds.
    pub query_report: Histogram,
    /// Queue wait: accept-to-worker-pop nanoseconds per connection.
    pub queue_wait: Histogram,
    /// Per-op service time (decode + answer + send), indexed by op byte.
    pub op_service: [Histogram; OP_SERVICE_SLOTS],
}

impl WorkerObs {
    /// Creates an empty registry (one bucket-array allocation per
    /// histogram; nothing allocates after this).
    pub fn new() -> Self {
        Self {
            query_scan: Histogram::new(),
            query_locate: Histogram::new(),
            query_verify: Histogram::new(),
            query_report: Histogram::new(),
            queue_wait: Histogram::new(),
            op_service: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Records the per-stage timings of one answered query. Callers gate
    /// this on `stats.timed` — stage tracing is sampled, and the untimed
    /// majority carry zeroed stage fields that must not reach the
    /// histograms.
    #[inline]
    pub fn record_query_stages(&self, stats: &QueryStats) {
        self.query_scan.record(stats.scan_ns);
        self.query_locate.record(stats.locate_ns);
        self.query_verify.record(stats.verify_ns);
        self.query_report.record(stats.report_ns);
    }

    /// Records the service time of one answered frame. The worker loop
    /// samples calls at the stage-tracing rate (first request on each
    /// connection always recorded); slow-query detection stays exact
    /// because the elapsed time is measured for every request regardless.
    #[inline]
    pub fn record_service(&self, op: u8, ns: u64) {
        if (op as usize) < OP_SERVICE_SLOTS {
            self.op_service[op as usize].record(ns);
        }
    }
}

impl Default for WorkerObs {
    fn default() -> Self {
        Self::new()
    }
}

/// Rank bytes of the pattern a slow-query entry retains. Long enough to
/// re-run a representative prefix query from a dump, short enough to keep
/// the entry `Copy` and the wire encoding tiny.
pub const SLOW_QUERY_PREFIX_LEN: usize = 16;

/// One threshold-crossing query in the slow-query log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// `ius_obs::clock::now_ns` when the query finished.
    pub ts_ns: u64,
    /// How long the query took.
    pub duration_ns: u64,
    /// Length of the queried pattern.
    pub pattern_len: u64,
    /// Distinct positions the query reported.
    pub reported: u64,
    /// How many of `prefix`'s bytes are meaningful
    /// (`min(pattern_len, SLOW_QUERY_PREFIX_LEN)`).
    pub prefix_len: u8,
    /// The first [`SLOW_QUERY_PREFIX_LEN`] ranks of the queried pattern,
    /// so a slow query is reproducible from a dump (trailing bytes zero).
    pub prefix: [u8; SLOW_QUERY_PREFIX_LEN],
}

impl SlowQueryEntry {
    /// The meaningful ranks of the retained pattern prefix.
    pub fn prefix(&self) -> &[u8] {
        &self.prefix[..self.prefix_len as usize]
    }
}

/// A fixed-capacity ring of [`SlowQueryEntry`]s: the newest `capacity`
/// slow queries survive, older ones are overwritten.
///
/// Unlike the lock-free `ius_obs::EventLog` this ring sits behind a mutex:
/// an entry (with its pattern prefix) no longer fits the event log's three
/// payload words, and queries that cross the slow threshold are — by
/// construction — rare and already tens of milliseconds deep, so a
/// microsecond of lock hold is invisible. Recording stays allocation-free:
/// the slots are preallocated and a push is a slot overwrite.
#[derive(Debug)]
pub struct SlowRing {
    inner: Mutex<SlowRingInner>,
}

#[derive(Debug)]
struct SlowRingInner {
    slots: Box<[SlowQueryEntry]>,
    next: usize,
    len: usize,
    recorded: u64,
}

impl SlowRing {
    /// Creates a ring keeping the newest `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(SlowRingInner {
                slots: vec![SlowQueryEntry::default(); capacity.max(1)].into_boxed_slice(),
                next: 0,
                len: 0,
                recorded: 0,
            }),
        }
    }

    /// Appends an entry, stamping it with the current clock and retaining
    /// the first [`SLOW_QUERY_PREFIX_LEN`] bytes of `pattern_prefix`.
    /// `pattern_len` is the full pattern length (the prefix the caller
    /// still holds may be shorter than the pattern only by truncation).
    pub fn record(&self, duration_ns: u64, pattern_len: u64, pattern_prefix: &[u8], reported: u64) {
        let keep = pattern_prefix.len().min(SLOW_QUERY_PREFIX_LEN);
        let mut entry = SlowQueryEntry {
            ts_ns: clock::now_ns(),
            duration_ns,
            pattern_len,
            reported,
            prefix_len: keep as u8,
            prefix: [0u8; SLOW_QUERY_PREFIX_LEN],
        };
        entry.prefix[..keep].copy_from_slice(&pattern_prefix[..keep]);
        let mut inner = self.inner.lock().expect("slow ring lock");
        let next = inner.next;
        inner.slots[next] = entry;
        inner.next = (next + 1) % inner.slots.len();
        inner.len = (inner.len + 1).min(inner.slots.len());
        inner.recorded += 1;
    }

    /// Total entries ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("slow ring lock").recorded
    }

    /// `(occupied slots, capacity)`.
    pub fn occupancy(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("slow ring lock");
        (inner.len as u64, inner.slots.len() as u64)
    }

    /// The surviving entries, oldest first.
    pub fn snapshot(&self) -> Vec<SlowQueryEntry> {
        let inner = self.inner.lock().expect("slow ring lock");
        let cap = inner.slots.len();
        let start = (inner.next + cap - inner.len) % cap;
        (0..inner.len)
            .map(|i| inner.slots[(start + i) % cap])
            .collect()
    }
}

/// Occupancy gauges of the server's diagnostic rings, carried in the
/// metrics snapshot so ring sizing is visible from a plain stderr dump
/// without a `TRACE_DUMP` scrape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingOccupancy {
    /// Occupied flight-recorder recent-ring slots.
    pub flight_recent: u64,
    /// Flight-recorder recent-ring capacity.
    pub flight_recent_capacity: u64,
    /// Occupied flight-recorder pinned (error) slots.
    pub flight_pinned: u64,
    /// Flight-recorder pinned-ring capacity.
    pub flight_pinned_capacity: u64,
    /// Occupied slow-query ring slots.
    pub slow: u64,
    /// Slow-query ring capacity.
    pub slow_capacity: u64,
}

/// The live-index observability view a `METRICS` scrape samples (zeroed
/// for static servers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveObsView {
    /// Flush (memtable freeze + segment build + swap) durations.
    pub flush: HistogramSnapshot,
    /// Compaction (merge build + swap) durations.
    pub compaction: HistogramSnapshot,
    /// WAL fsync durations.
    pub wal_fsync: HistogramSnapshot,
    /// Immutable segments currently serving.
    pub segments: u64,
    /// Memtable rows currently buffered.
    pub memtable_rows: u64,
    /// Compactions whose swap-in lost the id race and was discarded.
    pub swap_in_races: u64,
    /// Background compaction passes that failed (they retry).
    pub compaction_errors: u64,
    /// Mutation records replayed from the WAL at open.
    pub wal_replay_records: u64,
    /// WAL bytes scanned during replay.
    pub wal_replay_bytes: u64,
    /// Nanoseconds spent replaying the WAL.
    pub wal_replay_ns: u64,
    /// Most recent background/durability failure (empty when none).
    pub last_error: String,
}

/// The typed snapshot answered to a `METRICS` request: per-stage query
/// histograms merged across workers, the server's queue-wait/service
/// split, the live/WAL timings, and the slow-query log. The body carries
/// its own format version (`protocol::METRICS_FORMAT_VERSION`) so the
/// snapshot layout can evolve without a wire-version bump.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Snapshot layout version (see `protocol::METRICS_FORMAT_VERSION`).
    pub format_version: u16,
    /// Nanoseconds since the server's observability clock started.
    pub uptime_ns: u64,
    /// Minimizer-scan stage, merged across workers.
    pub query_scan: HistogramSnapshot,
    /// Locate stage (`equal_range` / trie descent), merged across workers.
    pub query_locate: HistogramSnapshot,
    /// Verification stage, merged across workers.
    pub query_verify: HistogramSnapshot,
    /// Reporting stage, merged across workers.
    pub query_report: HistogramSnapshot,
    /// Accept-to-worker-pop wait per connection.
    pub queue_wait: HistogramSnapshot,
    /// Per-op service time: `(op byte, histogram)` for every op that
    /// served at least one frame.
    pub op_service: Vec<(u8, HistogramSnapshot)>,
    /// Live-index and WAL timings (zeroed for static servers).
    pub live: LiveObsView,
    /// Queries slower than the threshold, oldest first (bounded ring).
    pub slow_queries: Vec<SlowQueryEntry>,
    /// The slow-query threshold in force.
    pub slow_query_threshold_ns: u64,
    /// Occupancy of the flight-recorder and slow-query rings.
    pub rings: RingOccupancy,
}

impl MetricsSnapshot {
    /// Renders the snapshot as the human-readable text dump printed by
    /// `serve --metrics-interval`.
    pub fn dump(&self) -> String {
        use ius_obs::fmt_ns;
        let mut out = String::new();
        out.push_str(&format!(
            "== ius metrics (format v{}, uptime {}) ==\n",
            self.format_version,
            fmt_ns(self.uptime_ns)
        ));
        out.push_str("query stages (ns per query, merged across workers):\n");
        for (name, h) in [
            ("scan  ", &self.query_scan),
            ("locate", &self.query_locate),
            ("verify", &self.query_verify),
            ("report", &self.query_report),
        ] {
            out.push_str(&format!("  {name}  {}\n", h.summary_line()));
        }
        out.push_str(&format!("queue_wait  {}\n", self.queue_wait.summary_line()));
        out.push_str("per-op service time:\n");
        for (op, h) in &self.op_service {
            out.push_str(&format!("  {:<12}  {}\n", op_name(*op), h.summary_line()));
        }
        let live = &self.live;
        out.push_str(&format!(
            "live: segments={} memtable_rows={} swap_in_races={} compaction_errors={}\n",
            live.segments, live.memtable_rows, live.swap_in_races, live.compaction_errors
        ));
        out.push_str(&format!("  flush       {}\n", live.flush.summary_line()));
        out.push_str(&format!(
            "  compaction  {}\n",
            live.compaction.summary_line()
        ));
        out.push_str(&format!(
            "wal: fsync  {}\n  replay: {} record(s), {} byte(s), {}\n",
            live.wal_fsync.summary_line(),
            live.wal_replay_records,
            live.wal_replay_bytes,
            fmt_ns(live.wal_replay_ns)
        ));
        if !live.last_error.is_empty() {
            out.push_str(&format!("last_error: {}\n", live.last_error));
        }
        let rings = &self.rings;
        out.push_str(&format!(
            "rings: flight_recent={}/{} flight_pinned={}/{} slow={}/{}\n",
            rings.flight_recent,
            rings.flight_recent_capacity,
            rings.flight_pinned,
            rings.flight_pinned_capacity,
            rings.slow,
            rings.slow_capacity
        ));
        out.push_str(&format!(
            "slow queries (over {}): {}\n",
            fmt_ns(self.slow_query_threshold_ns),
            self.slow_queries.len()
        ));
        for entry in &self.slow_queries {
            out.push_str(&format!(
                "  +{:<10}  {:<10}  pattern_len={}  reported={}  prefix={:?}\n",
                fmt_ns(entry.ts_ns),
                fmt_ns(entry.duration_ns),
                entry.pattern_len,
                entry.reported,
                entry.prefix()
            ));
        }
        out
    }
}

/// Merges the per-worker registries plus the shared slow-query log into
/// one [`MetricsSnapshot`] (the `METRICS` scrape path; allocation is fine
/// here).
pub(crate) fn merge_worker_obs(
    workers: &[std::sync::Arc<WorkerObs>],
    slow_log: &SlowRing,
    slow_query_threshold_ns: u64,
    live: LiveObsView,
    flight: FlightOccupancy,
) -> MetricsSnapshot {
    let (slow, slow_capacity) = slow_log.occupancy();
    let mut snapshot = MetricsSnapshot {
        format_version: crate::protocol::METRICS_FORMAT_VERSION,
        uptime_ns: ius_obs::clock::now_ns(),
        slow_query_threshold_ns,
        live,
        rings: RingOccupancy {
            flight_recent: flight.recent,
            flight_recent_capacity: flight.recent_capacity,
            flight_pinned: flight.pinned,
            flight_pinned_capacity: flight.pinned_capacity,
            slow,
            slow_capacity,
        },
        ..MetricsSnapshot::default()
    };
    let mut op_service: Vec<HistogramSnapshot> =
        vec![HistogramSnapshot::default(); OP_SERVICE_SLOTS];
    for worker in workers {
        snapshot.query_scan.merge(&worker.query_scan.snapshot());
        snapshot.query_locate.merge(&worker.query_locate.snapshot());
        snapshot.query_verify.merge(&worker.query_verify.snapshot());
        snapshot.query_report.merge(&worker.query_report.snapshot());
        snapshot.queue_wait.merge(&worker.queue_wait.snapshot());
        for (slot, hist) in op_service.iter_mut().zip(worker.op_service.iter()) {
            slot.merge(&hist.snapshot());
        }
    }
    snapshot.op_service = op_service
        .into_iter()
        .enumerate()
        .filter(|(_, h)| h.count > 0)
        .map(|(op, h)| (op as u8, h))
        .collect();
    snapshot.slow_queries = slow_log.snapshot();
    snapshot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters_and_context() {
        let metrics = ServerMetrics::new();
        ServerMetrics::inc(&metrics.connections);
        ServerMetrics::add(&metrics.occurrences, 41);
        ServerMetrics::inc(&metrics.occurrences);
        let snap = metrics.snapshot(
            "MWSA".into(),
            2,
            1000,
            4096,
            3,
            16,
            DurabilityView::default(),
        );
        assert_eq!(snap.index_name, "MWSA");
        assert_eq!(snap.generation, 2);
        assert_eq!(snap.corpus_len, 1000);
        assert_eq!(snap.index_size_bytes, 4096);
        assert_eq!(snap.workers, 3);
        assert_eq!(snap.queue_depth, 16);
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.occurrences, 42);
        assert_eq!(snap.requests, 0);
    }

    #[test]
    fn worker_registries_merge_on_scrape() {
        let workers: Vec<std::sync::Arc<WorkerObs>> = (0..3)
            .map(|_| std::sync::Arc::new(WorkerObs::new()))
            .collect();
        for (i, w) in workers.iter().enumerate() {
            w.record_query_stages(&QueryStats {
                scan_ns: 100 * (i as u64 + 1),
                locate_ns: 10,
                verify_ns: 20,
                report_ns: 30,
                ..QueryStats::default()
            });
            w.record_service(1, 5_000);
            w.record_service(0, 200);
            w.queue_wait.record(1_000);
        }
        // An out-of-range op byte is ignored, not a panic.
        workers[0].record_service(200, 1);
        let slow_log = SlowRing::new(8);
        slow_log.record(2_000_000, 64, &[5, 4, 3], 3);
        let flight = FlightOccupancy {
            recent: 2,
            recent_capacity: 64,
            pinned: 1,
            pinned_capacity: 16,
        };
        let snap = merge_worker_obs(
            &workers,
            &slow_log,
            1_000_000,
            LiveObsView::default(),
            flight,
        );
        assert_eq!(snap.query_scan.count, 3);
        assert_eq!(snap.query_scan.sum, 100 + 200 + 300);
        assert_eq!(snap.queue_wait.count, 3);
        let ops: Vec<u8> = snap.op_service.iter().map(|(op, _)| *op).collect();
        assert_eq!(ops, vec![0, 1], "only ops that served frames appear");
        assert_eq!(snap.op_service[1].1.count, 3);
        assert_eq!(snap.slow_queries.len(), 1);
        let entry = snap.slow_queries[0];
        assert_eq!(entry.duration_ns, 2_000_000);
        assert_eq!(entry.pattern_len, 64);
        assert_eq!(entry.reported, 3);
        assert_eq!(entry.prefix(), &[5, 4, 3]);
        assert_eq!(snap.slow_query_threshold_ns, 1_000_000);
        assert_eq!(snap.rings.flight_recent, 2);
        assert_eq!(snap.rings.flight_pinned, 1);
        assert_eq!(snap.rings.slow, 1);
        assert_eq!(snap.rings.slow_capacity, 8);
    }

    #[test]
    fn slow_ring_truncates_prefixes_and_keeps_the_newest() {
        let ring = SlowRing::new(2);
        let long: Vec<u8> = (0..40u8).collect();
        ring.record(1_000, 40, &long, 1);
        ring.record(2_000, 4, &[9, 8, 7, 6], 2);
        ring.record(3_000, 2, &[1, 2], 0);
        assert_eq!(ring.recorded(), 3);
        assert_eq!(ring.occupancy(), (2, 2));
        let entries = ring.snapshot();
        assert_eq!(entries.len(), 2, "capacity 2 keeps the newest two");
        assert_eq!(entries[0].prefix(), &[9, 8, 7, 6]);
        assert_eq!(entries[1].prefix(), &[1, 2]);
        // A fresh ring with a long pattern keeps exactly the prefix cap.
        let ring = SlowRing::new(4);
        ring.record(1, 40, &long, 0);
        let entry = ring.snapshot()[0];
        assert_eq!(entry.prefix_len as usize, SLOW_QUERY_PREFIX_LEN);
        assert_eq!(entry.prefix(), &long[..SLOW_QUERY_PREFIX_LEN]);
        assert_eq!(entry.pattern_len, 40);
    }

    #[test]
    fn dump_renders_every_section() {
        let workers = vec![std::sync::Arc::new(WorkerObs::new())];
        workers[0].record_service(1, 42_000);
        let slow_log = SlowRing::new(4);
        slow_log.record(77_000_000, 8, b"ACGTACGT", 2);
        let live = LiveObsView {
            segments: 4,
            memtable_rows: 123,
            last_error: "disk full".into(),
            ..LiveObsView::default()
        };
        let flight = FlightOccupancy {
            recent: 5,
            recent_capacity: 64,
            pinned: 1,
            pinned_capacity: 16,
        };
        let text = merge_worker_obs(&workers, &slow_log, 50_000_000, live, flight).dump();
        for needle in [
            "query stages",
            "queue_wait",
            "QUERY",
            "segments=4",
            "memtable_rows=123",
            "wal:",
            "slow queries",
            "pattern_len=8",
            "rings: flight_recent=5/64 flight_pinned=1/16 slow=1/4",
            "prefix=",
            "last_error: disk full",
        ] {
            assert!(text.contains(needle), "dump missing {needle:?}:\n{text}");
        }
    }
}
