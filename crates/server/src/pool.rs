//! The bounded admission queue between the acceptor and the worker pool.
//!
//! Admission control is the server's backpressure story: the acceptor
//! [`AdmissionQueue::try_push`]es each accepted connection, and when the
//! queue is at capacity the connection is *refused with a typed
//! `OVERLOADED` response* instead of buffered without bound — a client that
//! sees `OVERLOADED` knows to back off and retry, and the server's memory
//! stays bounded by `queue_depth + workers` connections.
//!
//! Each admitted connection carries its admission timestamp
//! (`ius_obs::clock::now_ns` at accept), so the worker popping it can
//! record the queue-wait — the accept-to-service gap that separates "the
//! server is slow" from "the server is saturated".

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};

struct QueueState {
    jobs: VecDeque<(TcpStream, u64)>,
    open: bool,
}

/// A bounded MPMC queue of admitted connections (std `Mutex` + `Condvar`;
/// no external dependencies).
pub(crate) struct AdmissionQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    depth: usize,
}

impl AdmissionQueue {
    /// Creates a queue admitting at most `depth` waiting connections
    /// (at least 1).
    pub(crate) fn new(depth: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(depth.max(1)),
                open: true,
            }),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Admits a connection stamped with its accept time, or gives it back
    /// when the queue is full or closed so the caller can refuse it with a
    /// typed response.
    pub(crate) fn try_push(&self, stream: TcpStream, accepted_ns: u64) -> Result<(), TcpStream> {
        let mut state = self.state.lock().expect("queue lock");
        if !state.open || state.jobs.len() >= self.depth {
            return Err(stream);
        }
        state.jobs.push_back((stream, accepted_ns));
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next admitted connection (with its accept stamp);
    /// `None` once the queue is closed (remaining entries are drained by
    /// [`AdmissionQueue::drain`]).
    pub(crate) fn pop(&self) -> Option<(TcpStream, u64)> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if !state.open {
                return None;
            }
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: `pop` returns `None`, `try_push` refuses.
    pub(crate) fn close(&self) {
        self.state.lock().expect("queue lock").open = false;
        self.ready.notify_all();
    }

    /// Removes and returns every connection still waiting (used at shutdown
    /// to answer them with `SHUTTING_DOWN`).
    pub(crate) fn drain(&self) -> Vec<TcpStream> {
        let mut state = self.state.lock().expect("queue lock");
        state.jobs.drain(..).map(|(stream, _)| stream).collect()
    }

    /// Number of connections currently waiting.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.state.lock().expect("queue lock").jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// A connected socket pair for queue tests.
    fn stream() -> TcpStream {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let _server_side = listener.accept().expect("accept");
        client
    }

    #[test]
    fn push_respects_the_depth_bound() {
        let queue = AdmissionQueue::new(2);
        assert!(queue.try_push(stream(), 10).is_ok());
        assert!(queue.try_push(stream(), 20).is_ok());
        assert!(
            queue.try_push(stream(), 30).is_err(),
            "third push must refuse"
        );
        assert_eq!(queue.len(), 2);
        let (_stream, accepted_ns) = queue.pop().expect("queued connection");
        assert_eq!(accepted_ns, 10, "accept stamps travel with the stream");
        assert!(queue.try_push(stream(), 40).is_ok(), "slot freed by pop");
    }

    #[test]
    fn close_wakes_poppers_and_refuses_pushes() {
        let queue = std::sync::Arc::new(AdmissionQueue::new(4));
        let waiter = {
            let queue = queue.clone();
            std::thread::spawn(move || queue.pop())
        };
        queue.close();
        assert!(waiter.join().expect("join").is_none());
        assert!(queue.try_push(stream(), 0).is_err());
    }

    #[test]
    fn drain_empties_the_queue() {
        let queue = AdmissionQueue::new(4);
        queue.try_push(stream(), 0).unwrap();
        queue.try_push(stream(), 0).unwrap();
        queue.close();
        assert_eq!(queue.drain().len(), 2);
        assert_eq!(queue.len(), 0);
    }
}
