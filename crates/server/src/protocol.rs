//! The length-prefixed binary wire protocol between [`crate::Server`] and
//! [`crate::Client`].
//!
//! Every frame — request and response alike — is a `u32` little-endian
//! length prefix followed by exactly that many payload bytes:
//!
//! ```text
//! u32 len · magic "IUSW" (4) · version (u16) · request id (u64) · op (u8) · body
//! ```
//!
//! The length prefix does not count itself. The magic and version open every
//! frame so each side can reject foreign or incompatible traffic without
//! trusting stream state; the request id is chosen by the client and echoed
//! verbatim in the response, which is what lets a client match answers to
//! questions. All multi-byte integers are little-endian, matching the
//! `ius_index::persist` on-disk format.
//!
//! **Version policy:** [`WIRE_VERSION`] is bumped on any layout change and
//! peers reject versions they do not know (no silent negotiation) — the same
//! policy as the index file format. A server answering an unknown version
//! replies with a typed [`ErrorCode::UnsupportedVersion`] frame carrying the
//! *current* magic and version, so even a stale client can decode the
//! refusal. Version 2 added the live-corpus ops ([`Request::Append`],
//! [`Request::DeleteRange`], [`Request::Flush`], [`Request::Compact`], the
//! [`Response::Live`] frame and the live counters of [`StatsSnapshot`]) and
//! raised [`MAX_REQUEST_FRAME`] so an `APPEND` can carry a real batch of
//! probability rows. Version 3 added the durability counters and the
//! `last_error` string to [`StatsSnapshot`] (WAL records/bytes, recovery
//! counts, the active fsync policy, background-compaction failures).
//!
//! The `METRICS` op ([`Request::Metrics`] / [`Response::Metrics`]) was
//! deliberately added **without** a version bump: a new op is a body-level
//! extension, so an old server answers it with a typed
//! [`ErrorCode::UnknownOp`] frame and keeps the connection — exactly the
//! degradation a monitoring client wants — whereas a version bump would
//! make every old↔new pairing a header-level rejection that closes the
//! connection. The snapshot body instead opens with its own
//! [`METRICS_FORMAT_VERSION`], so the metrics layout can evolve
//! independently and a client refuses an unknown layout typed
//! ([`ProtocolError::UnsupportedMetricsFormat`]). Metrics format 2 added
//! the per-entry slow-query pattern prefix and the ring-occupancy gauges.
//!
//! The `TRACE_DUMP` op ([`Request::TraceDump`] / [`Response::TraceDump`])
//! follows the same discipline: no wire-version bump (an old server
//! answers `UNKNOWN_OP` and keeps the connection), and the dump body opens
//! with its own [`TRACE_FORMAT_VERSION`] so the span layout can evolve
//! independently ([`ProtocolError::UnsupportedTraceFormat`]). The dump is
//! a non-destructive snapshot of the server's flight recorder — pinned
//! error traces first, then the recent ring, both oldest first.
//!
//! Requests: [`Request::Ping`], [`Request::Query`] (with a [`ResultMode`]
//! mapping onto the `ius_query` sinks: collect-all, count-only, first-`k`),
//! [`Request::Stats`], [`Request::Reload`], [`Request::Shutdown`], plus the
//! live-corpus mutations above (answered with a typed
//! [`ErrorCode::Live`] error by a server that does not serve a live index).
//! Responses mirror them, plus the typed [`Response::Error`] frame the
//! server sends instead of ever panicking (or hanging up silently) on
//! untrusted bytes.

use crate::flight::TraceRecordSnapshot;
use crate::metrics::{LiveObsView, MetricsSnapshot, RingOccupancy, SlowQueryEntry};
use ius_obs::trace::Span;
use ius_obs::HistogramSnapshot;
use ius_query::QueryStats;
use std::fmt;
use std::io::{self, Read};

/// The four magic bytes opening every wire frame.
pub const WIRE_MAGIC: [u8; 4] = *b"IUSW";

/// The current wire-protocol version.
pub const WIRE_VERSION: u16 = 3;

/// Layout version of the [`Response::Metrics`] body. Bumped when the
/// snapshot layout changes; independent of [`WIRE_VERSION`] (see the
/// module docs for why the `METRICS` op did not bump the wire version).
/// Version 2 added the slow-query pattern prefix and the ring-occupancy
/// gauges.
pub const METRICS_FORMAT_VERSION: u16 = 2;

/// Layout version of the [`Response::TraceDump`] body. Independent of
/// [`WIRE_VERSION`] for the same reason as the metrics format.
pub const TRACE_FORMAT_VERSION: u16 = 1;

/// Fixed header size inside the payload: magic + version + request id + op.
pub const HEADER_LEN: usize = 4 + 2 + 8 + 1;

/// Upper bound on request frames the server will read. Patterns are small,
/// but an `APPEND` legitimately carries a batch of `rows × σ` probability
/// rows (e.g. ~23k rows at σ = 91); anything larger than this bound is a
/// protocol violation or an attack and is refused before allocation.
pub const MAX_REQUEST_FRAME: usize = 1 << 24;

/// Upper bound on response frames the client will read (a collect-all answer
/// over a large corpus is the biggest legitimate frame).
pub const MAX_RESPONSE_FRAME: usize = 1 << 26;

// Request ops.
const OP_PING: u8 = 0;
const OP_QUERY: u8 = 1;
const OP_STATS: u8 = 2;
const OP_RELOAD: u8 = 3;
const OP_SHUTDOWN: u8 = 4;
const OP_APPEND: u8 = 5;
const OP_DELETE_RANGE: u8 = 6;
const OP_FLUSH: u8 = 7;
const OP_COMPACT: u8 = 8;
const OP_METRICS: u8 = 9;
const OP_TRACE_DUMP: u8 = 10;

// Response statuses.
const ST_PONG: u8 = 0;
const ST_MATCHES: u8 = 1;
const ST_COUNT: u8 = 2;
const ST_STATS: u8 = 3;
const ST_RELOADED: u8 = 4;
const ST_SHUTTING_DOWN: u8 = 5;
const ST_LIVE: u8 = 6;
const ST_METRICS: u8 = 7;
const ST_TRACE_DUMP: u8 = 8;
const ST_ERROR: u8 = 255;

// Result modes.
const MODE_COLLECT: u8 = 0;
const MODE_COUNT: u8 = 1;
const MODE_FIRST_K: u8 = 2;

/// What a query should deliver, mapping one-to-one onto the
/// `ius_query::MatchSink` implementations the server plugs into
/// `query_into`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultMode {
    /// Report every occurrence position (`Vec<usize>` sink).
    Collect,
    /// Report only the number of occurrences (`CountSink`).
    Count,
    /// Report the `k` smallest occurrence positions (`FirstKSink`); the
    /// engine stops early once it has them.
    FirstK(u64),
}

/// A request frame, minus the id (carried alongside).
/// (`PartialEq` only: `Append` carries `f64` probabilities.)
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Answer a pattern query in the given result mode.
    Query {
        /// What to deliver.
        mode: ResultMode,
        /// The rank-encoded pattern.
        pattern: Vec<u8>,
    },
    /// Report the server's metrics snapshot.
    Stats,
    /// Atomically swap in a new index. `None` reloads the path the server
    /// was started from.
    Reload {
        /// Path of the index file to load, if different from the startup
        /// path.
        path: Option<String>,
    },
    /// Gracefully stop the server: in-flight requests complete, new
    /// connections are refused.
    Shutdown,
    /// Append a batch of probability rows to a live corpus (row-major,
    /// `rows × sigma`, each row a distribution over the served alphabet).
    Append {
        /// Alphabet size the rows are encoded over (must match the served
        /// live index).
        sigma: u64,
        /// Row-major probabilities (`rows × sigma` values).
        probs: Vec<f64>,
    },
    /// Tombstone the logical range `[start, end)` of a live corpus.
    DeleteRange {
        /// First deleted position.
        start: u64,
        /// One past the last deleted position.
        end: u64,
    },
    /// Freeze the live memtable into segment(s).
    Flush,
    /// Run live compaction: one tiered round, or a full merge-all.
    Compact {
        /// `true` merges every segment into one; `false` applies one
        /// tiered policy round.
        full: bool,
    },
    /// Scrape the server's observability snapshot (per-stage query
    /// histograms, queue-wait/service split, live and WAL timings, slow
    /// queries). Old servers answer `UNKNOWN_OP` and keep the connection.
    Metrics,
    /// Drain a snapshot of the server's flight recorder: the most recent
    /// complete request traces plus the pinned error traces. Old servers
    /// answer `UNKNOWN_OP` and keep the connection.
    TraceDump,
}

/// Per-query counters carried on the wire (a `u64` projection of
/// [`QueryStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Candidate occurrences enumerated before verification.
    pub candidates: u64,
    /// Candidates that passed verification.
    pub verified: u64,
    /// Distinct positions delivered to the sink.
    pub reported: u64,
    /// Canonical 2D-grid nodes touched.
    pub grid_nodes: u64,
}

impl From<QueryStats> for WireStats {
    fn from(s: QueryStats) -> Self {
        Self {
            candidates: s.candidates as u64,
            verified: s.verified as u64,
            reported: s.reported as u64,
            grid_nodes: s.grid_nodes as u64,
        }
    }
}

impl From<WireStats> for QueryStats {
    fn from(s: WireStats) -> Self {
        // Stage timings do not travel on QUERY responses (they are served
        // aggregated by the METRICS op), so the projection zeroes them.
        Self {
            candidates: s.candidates as usize,
            verified: s.verified as usize,
            reported: s.reported as usize,
            grid_nodes: s.grid_nodes as usize,
            ..Self::default()
        }
    }
}

/// The server-side metrics snapshot answered to [`Request::Stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Display name of the served index family.
    pub index_name: String,
    /// Index generation: starts at 0, +1 per successful reload.
    pub generation: u64,
    /// Length of the served corpus.
    pub corpus_len: u64,
    /// Heap bytes of the served index.
    pub index_size_bytes: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Admission-queue capacity.
    pub queue_depth: u64,
    /// Connections accepted since startup.
    pub connections: u64,
    /// Frames read since startup (well-formed or not).
    pub requests: u64,
    /// Queries answered successfully.
    pub queries: u64,
    /// Occurrence positions delivered over all queries.
    pub occurrences: u64,
    /// Malformed or incompatible frames answered with a typed error.
    pub protocol_errors: u64,
    /// Well-formed queries that failed engine-side validation.
    pub query_errors: u64,
    /// Connections refused with `OVERLOADED` because the queue was full.
    pub overloaded: u64,
    /// Successful hot reloads.
    pub reloads: u64,
    /// Positions appended to a live corpus (0 for static serving).
    pub appended_positions: u64,
    /// Successful `DELETE_RANGE` requests.
    pub delete_ranges: u64,
    /// Explicit `FLUSH` requests that froze at least one segment
    /// (append-triggered auto-flushes are internal to the live index and
    /// not counted here).
    pub flushes: u64,
    /// Successful live compaction requests that merged at least one run.
    pub compactions: u64,
    /// Live mutations refused or failed (`LIVE_ERROR` frames: op on a
    /// static server, alphabet mismatch, malformed rows, bad ranges,
    /// segment build failures).
    pub live_errors: u64,
    /// Mutations logged to the live write-ahead log (0 when durability is
    /// off or the server is static).
    pub wal_records: u64,
    /// Bytes appended to the live write-ahead log.
    pub wal_bytes: u64,
    /// Crash recoveries the served live index performed at open.
    pub recoveries: u64,
    /// Mutations replayed from the write-ahead log at open.
    pub recovered_records: u64,
    /// The active fsync policy: 0 durability off, 1 per-record,
    /// 2 interval, 3 never.
    pub fsync_policy: u64,
    /// Background live-compaction rounds that failed (retried
    /// automatically; see `last_error`).
    pub compaction_errors: u64,
    /// The most recent background/durability error of the served live
    /// index (empty when none).
    pub last_error: String,
}

/// The answer to every live-corpus mutation (`APPEND` / `DELETE_RANGE` /
/// `FLUSH` / `COMPACT`): the post-operation shape of the live index plus
/// what the operation changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveSnapshot {
    /// Logical corpus length after the operation.
    pub corpus_len: u64,
    /// Immutable segments after the operation.
    pub segments: u64,
    /// Memtable rows after the operation.
    pub memtable_rows: u64,
    /// Tombstoned ranges after the operation.
    pub tombstones: u64,
    /// What the operation changed: positions appended, positions deleted
    /// (range width), segments created by the flush, or merges performed.
    pub changed: u64,
}

/// Typed error codes of [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame could not be decoded (bad magic, truncated or trailing
    /// bytes, unknown result mode, oversized length prefix).
    Malformed,
    /// The frame's wire version is not spoken by this server.
    UnsupportedVersion,
    /// The frame's op byte names no known request.
    UnknownOp,
    /// The query was well-formed on the wire but rejected by the engine
    /// (empty pattern, pattern shorter than ℓ / longer than the sharded
    /// bound, …).
    Query,
    /// The reload failed (missing path, unreadable or corrupt index file).
    Reload,
    /// The admission queue is full; retry later.
    Overloaded,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// A live-corpus mutation was refused: the server does not serve a
    /// live index, or the mutation failed engine-side (alphabet mismatch,
    /// malformed rows, out-of-range delete, segment build failure).
    Live,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Malformed => 0,
            ErrorCode::UnsupportedVersion => 1,
            ErrorCode::UnknownOp => 2,
            ErrorCode::Query => 3,
            ErrorCode::Reload => 4,
            ErrorCode::Overloaded => 5,
            ErrorCode::ShuttingDown => 6,
            ErrorCode::Live => 7,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        Ok(match b {
            0 => ErrorCode::Malformed,
            1 => ErrorCode::UnsupportedVersion,
            2 => ErrorCode::UnknownOp,
            3 => ErrorCode::Query,
            4 => ErrorCode::Reload,
            5 => ErrorCode::Overloaded,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Live,
            other => return Err(ProtocolError::UnknownErrorCode(other)),
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "MALFORMED",
            ErrorCode::UnsupportedVersion => "UNSUPPORTED_VERSION",
            ErrorCode::UnknownOp => "UNKNOWN_OP",
            ErrorCode::Query => "QUERY_ERROR",
            ErrorCode::Reload => "RELOAD_ERROR",
            ErrorCode::Overloaded => "OVERLOADED",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::Live => "LIVE_ERROR",
        };
        f.write_str(name)
    }
}

/// A response frame, minus the echoed id (carried alongside).
///
/// Deliberately unboxed despite the variant size skew (a `METRICS` body
/// dwarfs a `PONG`): a `Response` is a transient value built, encoded and
/// dropped within one frame round trip — never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Collect-all / first-`k` answer: the occurrence positions.
    Matches {
        /// Per-query counters.
        stats: WireStats,
        /// Sorted, deduplicated occurrence positions.
        positions: Vec<u64>,
    },
    /// Count-only answer.
    Count {
        /// Per-query counters.
        stats: WireStats,
        /// Number of distinct occurrences.
        count: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// Answer to a successful [`Request::Reload`].
    Reloaded {
        /// The new index generation.
        generation: u64,
    },
    /// Answer to [`Request::Shutdown`] (and to work arriving during
    /// shutdown).
    ShuttingDown,
    /// Answer to every successful live-corpus mutation.
    Live(LiveSnapshot),
    /// Answer to [`Request::Metrics`].
    Metrics(MetricsSnapshot),
    /// Answer to [`Request::TraceDump`]: the surviving flight-recorder
    /// traces, pinned errors first, then recent, both oldest first.
    TraceDump {
        /// Layout version of this body (see [`TRACE_FORMAT_VERSION`]).
        format_version: u16,
        /// The recorded traces.
        records: Vec<TraceRecordSnapshot>,
    },
    /// Typed refusal: the server never hangs up silently and never panics on
    /// untrusted bytes.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Decoding errors. The server maps these onto [`Response::Error`] frames;
/// the client surfaces them as `ClientError::Protocol`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame does not open with [`WIRE_MAGIC`].
    BadMagic([u8; 4]),
    /// The frame speaks a version this build does not.
    UnsupportedVersion(u16),
    /// The op byte names no known request.
    UnknownOp(u8),
    /// The status byte names no known response.
    UnknownStatus(u8),
    /// The result-mode byte names no known mode.
    UnknownMode(u8),
    /// The error-code byte names no known code.
    UnknownErrorCode(u8),
    /// The payload ended before the announced content.
    Truncated {
        /// What was being decoded when the bytes ran out.
        what: &'static str,
    },
    /// The payload has bytes after the announced content.
    TrailingBytes(usize),
    /// The length prefix exceeds the applicable frame bound.
    FrameTooLarge {
        /// The announced length.
        len: u64,
        /// The bound it violates.
        max: usize,
    },
    /// A string field is not valid UTF-8.
    InvalidUtf8,
    /// A `METRICS` body announces a snapshot layout this build does not
    /// speak (the op itself decoded fine; only the snapshot is opaque).
    UnsupportedMetricsFormat(u16),
    /// A `TRACE_DUMP` body announces a span layout this build does not
    /// speak (the op itself decoded fine; only the dump is opaque).
    UnsupportedTraceFormat(u16),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic(m) => {
                write!(f, "frame does not start with the IUSW magic (got {m:02x?})")
            }
            ProtocolError::UnsupportedVersion(v) => write!(
                f,
                "unsupported wire version {v} (this build speaks version {WIRE_VERSION})"
            ),
            ProtocolError::UnknownOp(op) => write!(f, "unknown request op {op}"),
            ProtocolError::UnknownStatus(st) => write!(f, "unknown response status {st}"),
            ProtocolError::UnknownMode(m) => write!(f, "unknown query result mode {m}"),
            ProtocolError::UnknownErrorCode(c) => write!(f, "unknown error code {c}"),
            ProtocolError::Truncated { what } => {
                write!(f, "frame truncated while decoding {what}")
            }
            ProtocolError::TrailingBytes(n) => {
                write!(f, "{n} unexpected trailing byte(s) after the frame content")
            }
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "length prefix {len} exceeds the frame bound {max}")
            }
            ProtocolError::InvalidUtf8 => f.write_str("string field is not valid UTF-8"),
            ProtocolError::UnsupportedMetricsFormat(v) => write!(
                f,
                "unsupported metrics snapshot format {v} (this build speaks \
                 format {METRICS_FORMAT_VERSION})"
            ),
            ProtocolError::UnsupportedTraceFormat(v) => write!(
                f,
                "unsupported trace dump format {v} (this build speaks \
                 format {TRACE_FORMAT_VERSION})"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_stats(out: &mut Vec<u8>, stats: &WireStats) {
    push_u64(out, stats.candidates);
    push_u64(out, stats.verified);
    push_u64(out, stats.reported);
    push_u64(out, stats.grid_nodes);
}

/// Sparse histogram encoding: the four summary integers, then the
/// occupied `(bucket index, count)` pairs.
fn push_histogram(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    push_u64(out, h.count);
    push_u64(out, h.sum);
    push_u64(out, h.min);
    push_u64(out, h.max);
    push_u32(out, h.buckets.len() as u32);
    for &(idx, n) in &h.buckets {
        push_u32(out, idx);
        push_u64(out, n);
    }
}

/// Starts a frame in `out` (clearing it): length placeholder + header.
fn begin_frame(out: &mut Vec<u8>, id: u64, op: u8) {
    out.clear();
    out.extend_from_slice(&[0u8; 4]); // length prefix, patched by end_frame
    out.extend_from_slice(&WIRE_MAGIC);
    push_u16(out, WIRE_VERSION);
    push_u64(out, id);
    out.push(op);
}

/// Patches the length prefix once the body is written.
fn end_frame(out: &mut [u8]) {
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes one request as a complete frame (length prefix included) into
/// `out`, which is cleared first and can be reused across calls.
pub fn encode_request(id: u64, request: &Request, out: &mut Vec<u8>) {
    match request {
        Request::Ping => begin_frame(out, id, OP_PING),
        Request::Query { mode, pattern } => {
            begin_frame(out, id, OP_QUERY);
            match mode {
                ResultMode::Collect => out.push(MODE_COLLECT),
                ResultMode::Count => out.push(MODE_COUNT),
                ResultMode::FirstK(k) => {
                    out.push(MODE_FIRST_K);
                    push_u64(out, *k);
                }
            }
            push_u32(out, pattern.len() as u32);
            out.extend_from_slice(pattern);
        }
        Request::Stats => begin_frame(out, id, OP_STATS),
        Request::Reload { path } => {
            begin_frame(out, id, OP_RELOAD);
            push_str(out, path.as_deref().unwrap_or(""));
        }
        Request::Shutdown => begin_frame(out, id, OP_SHUTDOWN),
        Request::Append { sigma, probs } => {
            begin_frame(out, id, OP_APPEND);
            push_u64(out, *sigma);
            push_u64(out, probs.len() as u64);
            for &p in probs {
                push_u64(out, p.to_bits());
            }
        }
        Request::DeleteRange { start, end } => {
            begin_frame(out, id, OP_DELETE_RANGE);
            push_u64(out, *start);
            push_u64(out, *end);
        }
        Request::Flush => begin_frame(out, id, OP_FLUSH),
        Request::Compact { full } => {
            begin_frame(out, id, OP_COMPACT);
            out.push(u8::from(*full));
        }
        Request::Metrics => begin_frame(out, id, OP_METRICS),
        Request::TraceDump => begin_frame(out, id, OP_TRACE_DUMP),
    }
    end_frame(out);
}

/// Encodes one response as a complete frame into `out` (cleared first).
pub fn encode_response(id: u64, response: &Response, out: &mut Vec<u8>) {
    match response {
        Response::Pong => begin_frame(out, id, ST_PONG),
        Response::Matches { stats, positions } => {
            begin_frame(out, id, ST_MATCHES);
            push_stats(out, stats);
            push_u64(out, positions.len() as u64);
            for &pos in positions {
                push_u64(out, pos);
            }
        }
        Response::Count { stats, count } => {
            begin_frame(out, id, ST_COUNT);
            push_stats(out, stats);
            push_u64(out, *count);
        }
        Response::Stats(snapshot) => {
            begin_frame(out, id, ST_STATS);
            push_str(out, &snapshot.index_name);
            for v in [
                snapshot.generation,
                snapshot.corpus_len,
                snapshot.index_size_bytes,
                snapshot.workers,
                snapshot.queue_depth,
                snapshot.connections,
                snapshot.requests,
                snapshot.queries,
                snapshot.occurrences,
                snapshot.protocol_errors,
                snapshot.query_errors,
                snapshot.overloaded,
                snapshot.reloads,
                snapshot.appended_positions,
                snapshot.delete_ranges,
                snapshot.flushes,
                snapshot.compactions,
                snapshot.live_errors,
                snapshot.wal_records,
                snapshot.wal_bytes,
                snapshot.recoveries,
                snapshot.recovered_records,
                snapshot.fsync_policy,
                snapshot.compaction_errors,
            ] {
                push_u64(out, v);
            }
            push_str(out, &snapshot.last_error);
        }
        Response::Reloaded { generation } => {
            begin_frame(out, id, ST_RELOADED);
            push_u64(out, *generation);
        }
        Response::ShuttingDown => begin_frame(out, id, ST_SHUTTING_DOWN),
        Response::Live(snapshot) => {
            begin_frame(out, id, ST_LIVE);
            for v in [
                snapshot.corpus_len,
                snapshot.segments,
                snapshot.memtable_rows,
                snapshot.tombstones,
                snapshot.changed,
            ] {
                push_u64(out, v);
            }
        }
        Response::Metrics(snapshot) => {
            begin_frame(out, id, ST_METRICS);
            push_u16(out, snapshot.format_version);
            push_u64(out, snapshot.uptime_ns);
            for h in [
                &snapshot.query_scan,
                &snapshot.query_locate,
                &snapshot.query_verify,
                &snapshot.query_report,
                &snapshot.queue_wait,
            ] {
                push_histogram(out, h);
            }
            out.push(snapshot.op_service.len() as u8);
            for (op, h) in &snapshot.op_service {
                out.push(*op);
                push_histogram(out, h);
            }
            let live = &snapshot.live;
            for h in [&live.flush, &live.compaction, &live.wal_fsync] {
                push_histogram(out, h);
            }
            for v in [
                live.segments,
                live.memtable_rows,
                live.swap_in_races,
                live.compaction_errors,
                live.wal_replay_records,
                live.wal_replay_bytes,
                live.wal_replay_ns,
            ] {
                push_u64(out, v);
            }
            push_str(out, &live.last_error);
            push_u64(out, snapshot.slow_query_threshold_ns);
            push_u32(out, snapshot.slow_queries.len() as u32);
            for entry in &snapshot.slow_queries {
                for v in [
                    entry.ts_ns,
                    entry.duration_ns,
                    entry.pattern_len,
                    entry.reported,
                ] {
                    push_u64(out, v);
                }
                out.push(entry.prefix_len);
                out.extend_from_slice(entry.prefix());
            }
            let rings = &snapshot.rings;
            for v in [
                rings.flight_recent,
                rings.flight_recent_capacity,
                rings.flight_pinned,
                rings.flight_pinned_capacity,
                rings.slow,
                rings.slow_capacity,
            ] {
                push_u64(out, v);
            }
        }
        Response::TraceDump {
            format_version,
            records,
        } => {
            begin_frame(out, id, ST_TRACE_DUMP);
            push_u16(out, *format_version);
            push_u32(out, records.len() as u32);
            for record in records {
                push_u64(out, record.trace_id);
                out.push(record.op);
                out.push(record.error);
                push_u64(out, record.started_ns);
                push_u64(out, record.total_ns);
                out.push(u8::from(record.truncated) | (u8::from(record.pinned) << 1));
                push_u16(out, record.spans.len() as u16);
                for span in &record.spans {
                    push_u16(out, span.code);
                    out.push(span.depth);
                    push_u64(out, span.start_ns);
                    push_u64(out, span.dur_ns);
                    push_u64(out, span.a);
                    push_u64(out, span.b);
                }
            }
        }
        Response::Error { code, message } => {
            begin_frame(out, id, ST_ERROR);
            out.push(code.to_byte());
            push_str(out, message);
        }
    }
    end_frame(out);
}

/// Encodes a [`Response::Matches`] frame directly from the engine's
/// `usize` positions — the server's hot path, sidestepping the `Vec<u64>`
/// a [`Response`] value would need. Byte-compatible with
/// [`encode_response`] (asserted by a unit test below).
pub fn encode_matches_from_slice(
    id: u64,
    stats: &WireStats,
    positions: &[usize],
    out: &mut Vec<u8>,
) {
    begin_frame(out, id, ST_MATCHES);
    push_stats(out, stats);
    push_u64(out, positions.len() as u64);
    for &pos in positions {
        push_u64(out, pos as u64);
    }
    end_frame(out);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over one frame payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtocolError> {
        if self.bytes.len() - self.pos < n {
            return Err(ProtocolError::Truncated { what });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ProtocolError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtocolError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtocolError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn string(&mut self, what: &'static str) -> Result<String, ProtocolError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::InvalidUtf8)
    }

    fn histogram(&mut self, what: &'static str) -> Result<HistogramSnapshot, ProtocolError> {
        let count = self.u64(what)?;
        let sum = self.u64(what)?;
        let min = self.u64(what)?;
        let max = self.u64(what)?;
        let n = self.u32(what)? as usize;
        // A lying pair count is bounds-checked per take, so cap the reserve.
        let mut buckets = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            buckets.push((self.u32(what)?, self.u64(what)?));
        }
        Ok(HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        let rest = self.bytes.len() - self.pos;
        if rest > 0 {
            return Err(ProtocolError::TrailingBytes(rest));
        }
        Ok(())
    }
}

/// Validates the payload header and returns `(request id, op/status byte,
/// body)`. Shared by request and response decoding; the server uses it
/// directly so it can echo the request id even when the *body* is garbage.
pub fn decode_header(payload: &[u8]) -> Result<(u64, u8, &[u8]), ProtocolError> {
    let mut cur = Cursor::new(payload);
    let magic = cur.take(4, "magic")?;
    if magic != WIRE_MAGIC {
        return Err(ProtocolError::BadMagic(
            magic.try_into().expect("4-byte slice"),
        ));
    }
    let version = cur.u16("version")?;
    if version != WIRE_VERSION {
        return Err(ProtocolError::UnsupportedVersion(version));
    }
    let id = cur.u64("request id")?;
    let op = cur.u8("op")?;
    Ok((id, op, &payload[cur.pos..]))
}

/// Decodes a QUERY body, **borrowing** the pattern from the frame buffer —
/// the server's hot path, so steady-state query handling copies nothing
/// out of the frame. Returns `None` when `op` is not the QUERY op (the
/// caller falls back to [`decode_request_body`]).
#[allow(clippy::type_complexity)]
pub fn decode_query_body(
    op: u8,
    body: &[u8],
) -> Option<Result<(ResultMode, &[u8]), ProtocolError>> {
    if op != OP_QUERY {
        return None;
    }
    let mut cur = Cursor::new(body);
    let decode = |cur: &mut Cursor| -> Result<(ResultMode, usize), ProtocolError> {
        let mode = match cur.u8("result mode")? {
            MODE_COLLECT => ResultMode::Collect,
            MODE_COUNT => ResultMode::Count,
            MODE_FIRST_K => ResultMode::FirstK(cur.u64("first-k bound")?),
            other => return Err(ProtocolError::UnknownMode(other)),
        };
        let len = cur.u32("pattern length")? as usize;
        Ok((mode, len))
    };
    Some(match decode(&mut cur) {
        Ok((mode, len)) => cur
            .take(len, "pattern bytes")
            .and_then(|pattern| cur.finish().map(|()| (mode, pattern))),
        Err(err) => Err(err),
    })
}

/// Decodes a request body given its op byte (from [`decode_header`]).
pub fn decode_request_body(op: u8, body: &[u8]) -> Result<Request, ProtocolError> {
    if let Some(result) = decode_query_body(op, body) {
        let (mode, pattern) = result?;
        return Ok(Request::Query {
            mode,
            pattern: pattern.to_vec(),
        });
    }
    let mut cur = Cursor::new(body);
    let request = match op {
        OP_PING => Request::Ping,
        OP_STATS => Request::Stats,
        OP_RELOAD => {
            let path = cur.string("reload path")?;
            Request::Reload {
                path: (!path.is_empty()).then_some(path),
            }
        }
        OP_SHUTDOWN => Request::Shutdown,
        OP_APPEND => {
            let sigma = cur.u64("append sigma")?;
            let count = cur.u64("append value count")? as usize;
            // The remaining payload must hold exactly `count` floats; the
            // cursor bounds-checks every take, so a lying count fails with
            // Truncated (or TrailingBytes) instead of over-reading.
            let mut probs = Vec::with_capacity(count.min(MAX_REQUEST_FRAME / 8));
            for _ in 0..count {
                probs.push(f64::from_bits(cur.u64("append probability")?));
            }
            Request::Append { sigma, probs }
        }
        OP_DELETE_RANGE => Request::DeleteRange {
            start: cur.u64("delete start")?,
            end: cur.u64("delete end")?,
        },
        OP_FLUSH => Request::Flush,
        OP_COMPACT => Request::Compact {
            full: cur.u8("compact mode")? != 0,
        },
        OP_METRICS => Request::Metrics,
        OP_TRACE_DUMP => Request::TraceDump,
        other => return Err(ProtocolError::UnknownOp(other)),
    };
    cur.finish()?;
    Ok(request)
}

/// Decodes a full request payload (header + body).
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), ProtocolError> {
    let (id, op, body) = decode_header(payload)?;
    Ok((id, decode_request_body(op, body)?))
}

/// Decodes a full response payload (header + body).
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), ProtocolError> {
    let (id, status, body) = decode_header(payload)?;
    let mut cur = Cursor::new(body);
    let take_stats = |cur: &mut Cursor| -> Result<WireStats, ProtocolError> {
        Ok(WireStats {
            candidates: cur.u64("stats.candidates")?,
            verified: cur.u64("stats.verified")?,
            reported: cur.u64("stats.reported")?,
            grid_nodes: cur.u64("stats.grid_nodes")?,
        })
    };
    let response = match status {
        ST_PONG => Response::Pong,
        ST_MATCHES => {
            let stats = take_stats(&mut cur)?;
            let count = cur.u64("position count")? as usize;
            let mut positions = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                positions.push(cur.u64("position")?);
            }
            Response::Matches { stats, positions }
        }
        ST_COUNT => {
            let stats = take_stats(&mut cur)?;
            let count = cur.u64("occurrence count")?;
            Response::Count { stats, count }
        }
        ST_STATS => {
            let index_name = cur.string("index name")?;
            let mut vals = [0u64; 24];
            for (i, v) in vals.iter_mut().enumerate() {
                *v = cur.u64(match i {
                    0 => "generation",
                    _ => "stats counter",
                })?;
            }
            let last_error = cur.string("last error")?;
            Response::Stats(StatsSnapshot {
                index_name,
                generation: vals[0],
                corpus_len: vals[1],
                index_size_bytes: vals[2],
                workers: vals[3],
                queue_depth: vals[4],
                connections: vals[5],
                requests: vals[6],
                queries: vals[7],
                occurrences: vals[8],
                protocol_errors: vals[9],
                query_errors: vals[10],
                overloaded: vals[11],
                reloads: vals[12],
                appended_positions: vals[13],
                delete_ranges: vals[14],
                flushes: vals[15],
                compactions: vals[16],
                live_errors: vals[17],
                wal_records: vals[18],
                wal_bytes: vals[19],
                recoveries: vals[20],
                recovered_records: vals[21],
                fsync_policy: vals[22],
                compaction_errors: vals[23],
                last_error,
            })
        }
        ST_RELOADED => Response::Reloaded {
            generation: cur.u64("generation")?,
        },
        ST_SHUTTING_DOWN => Response::ShuttingDown,
        ST_LIVE => Response::Live(LiveSnapshot {
            corpus_len: cur.u64("live corpus length")?,
            segments: cur.u64("live segment count")?,
            memtable_rows: cur.u64("live memtable rows")?,
            tombstones: cur.u64("live tombstone count")?,
            changed: cur.u64("live change count")?,
        }),
        ST_METRICS => {
            let format_version = cur.u16("metrics format version")?;
            if format_version != METRICS_FORMAT_VERSION {
                return Err(ProtocolError::UnsupportedMetricsFormat(format_version));
            }
            let uptime_ns = cur.u64("metrics uptime")?;
            let query_scan = cur.histogram("scan histogram")?;
            let query_locate = cur.histogram("locate histogram")?;
            let query_verify = cur.histogram("verify histogram")?;
            let query_report = cur.histogram("report histogram")?;
            let queue_wait = cur.histogram("queue-wait histogram")?;
            let op_count = cur.u8("op-service count")? as usize;
            let mut op_service = Vec::with_capacity(op_count.min(256));
            for _ in 0..op_count {
                let op = cur.u8("op-service op byte")?;
                op_service.push((op, cur.histogram("op-service histogram")?));
            }
            let flush = cur.histogram("flush histogram")?;
            let compaction = cur.histogram("compaction histogram")?;
            let wal_fsync = cur.histogram("wal-fsync histogram")?;
            let mut live_vals = [0u64; 7];
            for v in live_vals.iter_mut() {
                *v = cur.u64("live counter")?;
            }
            let last_error = cur.string("live last error")?;
            let slow_query_threshold_ns = cur.u64("slow-query threshold")?;
            let slow_count = cur.u32("slow-query count")? as usize;
            let mut slow_queries = Vec::with_capacity(slow_count.min(4096));
            for _ in 0..slow_count {
                let mut entry = SlowQueryEntry {
                    ts_ns: cur.u64("slow-query ts")?,
                    duration_ns: cur.u64("slow-query duration")?,
                    pattern_len: cur.u64("slow-query pattern length")?,
                    reported: cur.u64("slow-query reported")?,
                    ..SlowQueryEntry::default()
                };
                let prefix_len = cur.u8("slow-query prefix length")? as usize;
                if prefix_len > crate::metrics::SLOW_QUERY_PREFIX_LEN {
                    return Err(ProtocolError::Truncated {
                        what: "slow-query prefix",
                    });
                }
                let bytes = cur.take(prefix_len, "slow-query prefix")?;
                entry.prefix_len = prefix_len as u8;
                entry.prefix[..prefix_len].copy_from_slice(bytes);
                slow_queries.push(entry);
            }
            let mut ring_vals = [0u64; 6];
            for v in ring_vals.iter_mut() {
                *v = cur.u64("ring occupancy")?;
            }
            Response::Metrics(MetricsSnapshot {
                format_version,
                uptime_ns,
                query_scan,
                query_locate,
                query_verify,
                query_report,
                queue_wait,
                op_service,
                live: LiveObsView {
                    flush,
                    compaction,
                    wal_fsync,
                    segments: live_vals[0],
                    memtable_rows: live_vals[1],
                    swap_in_races: live_vals[2],
                    compaction_errors: live_vals[3],
                    wal_replay_records: live_vals[4],
                    wal_replay_bytes: live_vals[5],
                    wal_replay_ns: live_vals[6],
                    last_error,
                },
                slow_queries,
                slow_query_threshold_ns,
                rings: RingOccupancy {
                    flight_recent: ring_vals[0],
                    flight_recent_capacity: ring_vals[1],
                    flight_pinned: ring_vals[2],
                    flight_pinned_capacity: ring_vals[3],
                    slow: ring_vals[4],
                    slow_capacity: ring_vals[5],
                },
            })
        }
        ST_TRACE_DUMP => {
            let format_version = cur.u16("trace format version")?;
            if format_version != TRACE_FORMAT_VERSION {
                return Err(ProtocolError::UnsupportedTraceFormat(format_version));
            }
            let count = cur.u32("trace count")? as usize;
            let mut records = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                let trace_id = cur.u64("trace id")?;
                let op = cur.u8("trace op")?;
                let error = cur.u8("trace error")?;
                let started_ns = cur.u64("trace start")?;
                let total_ns = cur.u64("trace total")?;
                let flags = cur.u8("trace flags")?;
                let span_count = cur.u16("trace span count")? as usize;
                let mut spans = Vec::with_capacity(span_count.min(4096));
                for _ in 0..span_count {
                    spans.push(Span {
                        code: cur.u16("span code")?,
                        depth: cur.u8("span depth")?,
                        start_ns: cur.u64("span start")?,
                        dur_ns: cur.u64("span duration")?,
                        a: cur.u64("span detail a")?,
                        b: cur.u64("span detail b")?,
                    });
                }
                records.push(TraceRecordSnapshot {
                    trace_id,
                    op,
                    error,
                    started_ns,
                    total_ns,
                    truncated: flags & 1 != 0,
                    pinned: flags & 2 != 0,
                    spans,
                });
            }
            Response::TraceDump {
                format_version,
                records,
            }
        }
        ST_ERROR => {
            let code = ErrorCode::from_byte(cur.u8("error code")?)?;
            let message = cur.string("error message")?;
            Response::Error { code, message }
        }
        other => return Err(ProtocolError::UnknownStatus(other)),
    };
    cur.finish()?;
    Ok((id, response))
}

// ---------------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------------

/// Reads one frame payload (length prefix stripped) from `r` into `buf`.
///
/// Returns `Ok(false)` on clean EOF at a frame boundary, `Ok(true)` when a
/// frame was read. A length prefix above `max_len` fails with
/// `InvalidData` *before* any allocation, so a hostile peer cannot make the
/// reader reserve absurd buffers.
///
/// # Errors
///
/// I/O errors of the reader; `UnexpectedEof` on EOF inside a frame.
pub fn read_frame(r: &mut dyn Read, max_len: usize, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut prefix = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        let n = r.read(&mut prefix[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside a frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtocolError::FrameTooLarge {
                len: len as u64,
                max: max_len,
            }
            .to_string(),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::TRACE_NO_ERROR;

    fn round_trip_request(request: Request) {
        let mut frame = Vec::new();
        encode_request(0xFEED_BEEF_0042, &request, &mut frame);
        let (id, got) = decode_request(&frame[4..]).expect("decode");
        assert_eq!(id, 0xFEED_BEEF_0042);
        assert_eq!(got, request);
        // The length prefix covers exactly the payload.
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
    }

    fn round_trip_response(response: Response) {
        let mut frame = Vec::new();
        encode_response(7, &response, &mut frame);
        let (id, got) = decode_response(&frame[4..]).expect("decode");
        assert_eq!(id, 7);
        assert_eq!(got, response);
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Reload { path: None });
        round_trip_request(Request::Reload {
            path: Some("/tmp/index.iusx".into()),
        });
        round_trip_request(Request::Append {
            sigma: 2,
            probs: vec![0.25, 0.75, 1.0, 0.0],
        });
        round_trip_request(Request::Append {
            sigma: 4,
            probs: Vec::new(),
        });
        round_trip_request(Request::DeleteRange { start: 10, end: 99 });
        round_trip_request(Request::Flush);
        round_trip_request(Request::Compact { full: false });
        round_trip_request(Request::Compact { full: true });
        round_trip_request(Request::Metrics);
        round_trip_request(Request::TraceDump);
        for mode in [
            ResultMode::Collect,
            ResultMode::Count,
            ResultMode::FirstK(9),
        ] {
            round_trip_request(Request::Query {
                mode,
                pattern: vec![0, 1, 2, 3, 1, 0],
            });
            round_trip_request(Request::Query {
                mode,
                pattern: Vec::new(),
            });
        }
    }

    #[test]
    fn every_response_round_trips() {
        let stats = WireStats {
            candidates: 10,
            verified: 6,
            reported: 4,
            grid_nodes: 3,
        };
        round_trip_response(Response::Pong);
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Matches {
            stats,
            positions: vec![1, 5, 900, u64::MAX],
        });
        round_trip_response(Response::Matches {
            stats: WireStats::default(),
            positions: Vec::new(),
        });
        round_trip_response(Response::Count { stats, count: 42 });
        round_trip_response(Response::Reloaded { generation: 3 });
        round_trip_response(Response::Stats(StatsSnapshot {
            index_name: "MWSA-G".into(),
            generation: 2,
            corpus_len: 100_000,
            index_size_bytes: 1 << 20,
            workers: 4,
            queue_depth: 64,
            connections: 17,
            requests: 1000,
            queries: 990,
            occurrences: 12345,
            protocol_errors: 3,
            query_errors: 7,
            overloaded: 1,
            reloads: 2,
            appended_positions: 4096,
            delete_ranges: 3,
            flushes: 9,
            compactions: 4,
            live_errors: 2,
            wal_records: 4099,
            wal_bytes: 1 << 20,
            recoveries: 1,
            recovered_records: 17,
            fsync_policy: 2,
            compaction_errors: 1,
            last_error: "background compaction failed (will retry): disk full".to_string(),
        }));
        round_trip_response(Response::Live(LiveSnapshot {
            corpus_len: 123_456,
            segments: 7,
            memtable_rows: 300,
            tombstones: 2,
            changed: 512,
        }));
        for code in [
            ErrorCode::Malformed,
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownOp,
            ErrorCode::Query,
            ErrorCode::Reload,
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::Live,
        ] {
            round_trip_response(Response::Error {
                code,
                message: format!("{code} happened"),
            });
        }
    }

    #[test]
    fn slice_encoder_is_byte_compatible_with_the_owned_encoder() {
        let stats = WireStats {
            candidates: 8,
            verified: 8,
            reported: 3,
            grid_nodes: 0,
        };
        let positions = [3usize, 77, 1 << 40];
        let mut fast = Vec::new();
        encode_matches_from_slice(99, &stats, &positions, &mut fast);
        let mut owned = Vec::new();
        encode_response(
            99,
            &Response::Matches {
                stats,
                positions: positions.iter().map(|&p| p as u64).collect(),
            },
            &mut owned,
        );
        assert_eq!(fast, owned);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = Vec::new();
        encode_request(1, &Request::Ping, &mut frame);
        frame[4] = b'X';
        assert!(matches!(
            decode_request(&frame[4..]),
            Err(ProtocolError::BadMagic(_))
        ));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut frame = Vec::new();
        encode_request(1, &Request::Ping, &mut frame);
        frame[8] = 0xFF; // low byte of the version field
        assert!(matches!(
            decode_request(&frame[4..]),
            Err(ProtocolError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn unknown_op_status_and_mode_are_rejected() {
        let mut frame = Vec::new();
        encode_request(1, &Request::Ping, &mut frame);
        frame[18] = 200; // op byte
        assert!(matches!(
            decode_request(&frame[4..]),
            Err(ProtocolError::UnknownOp(200))
        ));
        let mut frame = Vec::new();
        encode_response(1, &Response::Pong, &mut frame);
        frame[18] = 201;
        assert!(matches!(
            decode_response(&frame[4..]),
            Err(ProtocolError::UnknownStatus(201))
        ));
        let mut frame = Vec::new();
        encode_request(
            1,
            &Request::Query {
                mode: ResultMode::Collect,
                pattern: vec![1],
            },
            &mut frame,
        );
        frame[19] = 77; // mode byte
        assert!(matches!(
            decode_request(&frame[4..]),
            Err(ProtocolError::UnknownMode(77))
        ));
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let mut frame = Vec::new();
        encode_request(
            3,
            &Request::Query {
                mode: ResultMode::FirstK(5),
                pattern: vec![1, 2, 3],
            },
            &mut frame,
        );
        // Short read: every prefix of the payload that is not the whole
        // payload must fail with Truncated (never panic).
        for cut in 0..frame.len() - 4 {
            let result = decode_request(&frame[4..4 + cut]);
            assert!(
                matches!(result, Err(ProtocolError::Truncated { .. })),
                "cut at {cut}: {result:?}"
            );
        }
        // Trailing garbage after a well-formed body.
        let mut long = frame[4..].to_vec();
        long.push(0xAB);
        assert!(matches!(
            decode_request(&long),
            Err(ProtocolError::TrailingBytes(1))
        ));
    }

    #[test]
    fn append_bodies_with_lying_counts_are_rejected() {
        let mut frame = Vec::new();
        encode_request(
            5,
            &Request::Append {
                sigma: 2,
                probs: vec![0.5, 0.5],
            },
            &mut frame,
        );
        // Every strict prefix of the payload fails Truncated, never panics.
        for cut in 0..frame.len() - 4 {
            assert!(
                matches!(
                    decode_request(&frame[4..4 + cut]),
                    Err(ProtocolError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
        // A count larger than the remaining floats: Truncated.
        let mut lying = frame.clone();
        lying[4 + HEADER_LEN + 8] += 1; // low byte of the value count
        assert!(matches!(
            decode_request(&lying[4..]),
            Err(ProtocolError::Truncated { .. })
        ));
        // A count smaller than the supplied floats: TrailingBytes.
        let mut lying = frame;
        lying[4 + HEADER_LEN + 8] -= 1;
        assert!(matches!(
            decode_request(&lying[4..]),
            Err(ProtocolError::TrailingBytes(8))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocating() {
        let bytes = u32::MAX.to_le_bytes();
        let mut reader: &[u8] = &bytes;
        let mut buf = Vec::new();
        let err = read_frame(&mut reader, MAX_REQUEST_FRAME, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(buf.capacity() < MAX_REQUEST_FRAME);
    }

    #[test]
    fn read_frame_distinguishes_clean_eof_from_mid_frame_eof() {
        let mut empty: &[u8] = &[];
        let mut buf = Vec::new();
        assert!(!read_frame(&mut empty, 1024, &mut buf).unwrap());
        // EOF inside the length prefix.
        let mut short: &[u8] = &[3, 0];
        assert_eq!(
            read_frame(&mut short, 1024, &mut buf).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // EOF inside the payload.
        let mut short: &[u8] = &[5, 0, 0, 0, 1, 2];
        assert_eq!(
            read_frame(&mut short, 1024, &mut buf).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn wire_stats_projection_round_trips() {
        let stats = QueryStats {
            candidates: 5,
            verified: 4,
            reported: 2,
            grid_nodes: 1,
            ..QueryStats::default()
        };
        let wire: WireStats = stats.into();
        let back: QueryStats = wire.into();
        assert_eq!(back, stats);
    }

    /// A fully-populated metrics snapshot for the wire tests: every
    /// histogram occupied, per-op list non-trivial, live view and slow-log
    /// non-empty.
    fn sample_metrics_snapshot() -> MetricsSnapshot {
        let hist = |values: &[u64]| {
            let h = ius_obs::Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        MetricsSnapshot {
            format_version: METRICS_FORMAT_VERSION,
            uptime_ns: 123_456_789,
            query_scan: hist(&[100, 200, 30_000]),
            query_locate: hist(&[50, 60]),
            query_verify: hist(&[1 << 20]),
            query_report: hist(&[7]),
            queue_wait: hist(&[900, 1_000_000]),
            op_service: vec![(0, hist(&[150])), (1, hist(&[10_000, 20_000]))],
            live: crate::metrics::LiveObsView {
                flush: hist(&[2_000_000]),
                compaction: hist(&[9_000_000, 11_000_000]),
                wal_fsync: hist(&[400_000]),
                segments: 5,
                memtable_rows: 321,
                swap_in_races: 1,
                compaction_errors: 2,
                wal_replay_records: 77,
                wal_replay_bytes: 8_192,
                wal_replay_ns: 3_000_000,
                last_error: "background compaction failed (will retry): disk full".into(),
            },
            slow_queries: vec![
                SlowQueryEntry {
                    ts_ns: 1_000,
                    duration_ns: 60_000_000,
                    pattern_len: 32,
                    reported: 4,
                    prefix_len: crate::metrics::SLOW_QUERY_PREFIX_LEN as u8,
                    prefix: [7; crate::metrics::SLOW_QUERY_PREFIX_LEN],
                },
                SlowQueryEntry {
                    ts_ns: 2_000,
                    duration_ns: 51_000_000,
                    pattern_len: 8,
                    reported: 0,
                    prefix_len: 8,
                    prefix: {
                        let mut p = [0u8; crate::metrics::SLOW_QUERY_PREFIX_LEN];
                        p[..8].copy_from_slice(&[0, 1, 2, 3, 3, 2, 1, 0]);
                        p
                    },
                },
            ],
            slow_query_threshold_ns: 50_000_000,
            rings: RingOccupancy {
                flight_recent: 12,
                flight_recent_capacity: 64,
                flight_pinned: 2,
                flight_pinned_capacity: 16,
                slow: 2,
                slow_capacity: 128,
            },
        }
    }

    #[test]
    fn metrics_response_round_trips() {
        round_trip_response(Response::Metrics(sample_metrics_snapshot()));
        // The all-zero snapshot (static server, nothing recorded yet) must
        // round-trip too — as long as it announces the spoken format.
        round_trip_response(Response::Metrics(MetricsSnapshot {
            format_version: METRICS_FORMAT_VERSION,
            ..MetricsSnapshot::default()
        }));
    }

    #[test]
    fn metrics_truncations_are_refused_typed() {
        let mut frame = Vec::new();
        encode_response(9, &Response::Metrics(sample_metrics_snapshot()), &mut frame);
        // Every strict prefix of the payload fails Truncated, never panics
        // and never misdecodes.
        for cut in HEADER_LEN..frame.len() - 4 {
            let result = decode_response(&frame[4..4 + cut]);
            assert!(
                matches!(result, Err(ProtocolError::Truncated { .. })),
                "cut at {cut}: {result:?}"
            );
        }
        // Trailing garbage after a well-formed snapshot.
        let mut long = frame[4..].to_vec();
        long.push(0x00);
        assert!(matches!(
            decode_response(&long),
            Err(ProtocolError::TrailingBytes(1))
        ));
    }

    #[test]
    fn future_metrics_format_is_refused_typed() {
        let mut frame = Vec::new();
        encode_response(
            11,
            &Response::Metrics(MetricsSnapshot {
                format_version: METRICS_FORMAT_VERSION + 1,
                ..MetricsSnapshot::default()
            }),
            &mut frame,
        );
        assert!(matches!(
            decode_response(&frame[4..]),
            Err(ProtocolError::UnsupportedMetricsFormat(v)) if v == METRICS_FORMAT_VERSION + 1
        ));
    }

    /// A populated trace dump: one pinned error trace, one recent trace
    /// with a nested span tree and non-trivial detail words.
    fn sample_trace_dump() -> Response {
        Response::TraceDump {
            format_version: TRACE_FORMAT_VERSION,
            records: vec![
                TraceRecordSnapshot {
                    trace_id: 42,
                    op: 1,
                    error: 3,
                    started_ns: 1_000_000,
                    total_ns: 90_000,
                    truncated: true,
                    pinned: true,
                    spans: vec![Span {
                        code: ius_obs::trace::STAGE_FRAME_DECODE,
                        depth: 0,
                        start_ns: 10,
                        dur_ns: 500,
                        a: 0,
                        b: 0,
                    }],
                },
                TraceRecordSnapshot {
                    trace_id: 43,
                    op: 1,
                    error: TRACE_NO_ERROR,
                    started_ns: 2_000_000,
                    total_ns: 45_000,
                    truncated: false,
                    pinned: false,
                    spans: vec![
                        Span {
                            code: ius_obs::trace::STAGE_QUERY,
                            depth: 0,
                            start_ns: 600,
                            dur_ns: 40_000,
                            a: 0,
                            b: 7,
                        },
                        Span {
                            code: ius_obs::trace::STAGE_PART,
                            depth: 1,
                            start_ns: 0,
                            dur_ns: 30_000,
                            a: 2,
                            b: 7,
                        },
                        Span {
                            code: ius_obs::trace::STAGE_VERIFY,
                            depth: 2,
                            start_ns: 0,
                            dur_ns: 20_000,
                            a: 11,
                            b: 0,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn trace_dump_round_trips() {
        round_trip_request(Request::TraceDump);
        round_trip_response(sample_trace_dump());
        // The empty dump (fresh server, nothing sampled yet) round-trips.
        round_trip_response(Response::TraceDump {
            format_version: TRACE_FORMAT_VERSION,
            records: Vec::new(),
        });
    }

    #[test]
    fn trace_dump_truncations_are_refused_typed() {
        let mut frame = Vec::new();
        encode_response(13, &sample_trace_dump(), &mut frame);
        for cut in HEADER_LEN..frame.len() - 4 {
            let result = decode_response(&frame[4..4 + cut]);
            assert!(
                matches!(result, Err(ProtocolError::Truncated { .. })),
                "cut at {cut}: {result:?}"
            );
        }
        let mut long = frame[4..].to_vec();
        long.push(0x00);
        assert!(matches!(
            decode_response(&long),
            Err(ProtocolError::TrailingBytes(1))
        ));
    }

    #[test]
    fn future_trace_format_is_refused_typed() {
        let mut frame = Vec::new();
        encode_response(
            17,
            &Response::TraceDump {
                format_version: TRACE_FORMAT_VERSION + 1,
                records: Vec::new(),
            },
            &mut frame,
        );
        assert!(matches!(
            decode_response(&frame[4..]),
            Err(ProtocolError::UnsupportedTraceFormat(v)) if v == TRACE_FORMAT_VERSION + 1
        ));
    }
}
