//! The concurrent TCP server: acceptor + fixed worker pool + hot-reloadable
//! served index.
//!
//! ## Concurrency model
//!
//! One acceptor thread admits connections into the bounded
//! [`crate::pool::AdmissionQueue`] (refusing with a typed `OVERLOADED`
//! frame when it is full); `workers` threads each own one
//! [`QueryScratch`] plus reusable frame/position buffers and serve one
//! connection at a time, request after request — so steady-state query
//! handling allocates nothing on the hot path beyond what the engine's
//! warmed-up scratch already holds.
//!
//! ## Hot reload
//!
//! The served index lives behind `Mutex<Arc<ServedState>>`. A worker
//! answering a query clones the `Arc` (a refcount bump) and runs against
//! that snapshot; `RELOAD` builds the replacement off-lock and swaps the
//! `Arc`. In-flight queries keep their snapshot alive until they finish —
//! nothing is dropped mid-request, and the old index is freed exactly when
//! its last in-flight query completes.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] (or a client `SHUTDOWN` frame) closes the queue,
//! wakes the acceptor, answers queued-but-unserved connections with
//! `SHUTTING_DOWN`, and joins every thread. Workers poll the shutdown flag
//! between requests (connection reads run under a short timeout), so the
//! current request always completes but idle connections are released
//! promptly.
//!
//! ## Observability
//!
//! Each worker owns a private [`WorkerObs`] histogram registry; recording
//! (per-stage query timings, per-op service time, queue wait) is a few
//! relaxed atomic adds into that registry, so workers never contend with
//! each other or with scrapers. Per-request elapsed time is measured on
//! every request (the slow-query log is exact), but histogram feeds —
//! service time and the per-stage breakdown — are sampled at
//! 1-in-`clock::STAGE_SAMPLE_EVERY` to keep their cold cache lines off
//! the per-request path. A `METRICS` request — or a local
//! [`MetricsHandle`] — merges every registry plus the shared slow-query
//! ring into one [`MetricsSnapshot`] on the scrape path. All recording
//! sites are gated on `ius_obs::clock::enabled()`, which is how the
//! overhead benchmark measures instrumented vs. stubbed serving.

use crate::flight::{FlightRecorder, TRACE_NO_ERROR};
use crate::metrics::{
    merge_worker_obs, DurabilityView, LiveObsView, MetricsSnapshot, ServerMetrics, SlowRing,
    WorkerObs, SLOW_QUERY_PREFIX_LEN,
};
use crate::pool::AdmissionQueue;
use crate::protocol::{
    decode_header, decode_query_body, decode_request_body, encode_matches_from_slice,
    encode_response, read_frame, ErrorCode, LiveSnapshot, ProtocolError, Request, Response,
    ResultMode, StatsSnapshot, MAX_REQUEST_FRAME, TRACE_FORMAT_VERSION,
};
use ius_arena::Arena;
use ius_exec::WorkerPool;
use ius_index::{open_any_index, AnyIndex, LoadedAny, ShardedIndex, UncertainIndex};
use ius_live::LiveIndex;
use ius_obs::{clock, trace};
use ius_query::{CountSink, FirstKSink, QueryScratch};
use ius_weighted::WeightedString;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once, Weak};
use std::time::Duration;

/// An index ready to serve: the structure plus whatever corpus access its
/// queries need.
///
/// Single-machine families verify candidates by random access to the
/// corpus, so they are paired with (shared ownership of) `X`; a
/// [`ShardedIndex`] owns its chunks and is self-contained — which is why a
/// persisted sharded file can be served or hot-reloaded without
/// regenerating the corpus.
///
/// Deliberately unboxed despite the variant size skew: a server holds one
/// of these per corpus, and dispatch sits on the per-query hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ServedIndex {
    /// One single-machine index over a shared corpus.
    Single {
        /// The index.
        index: AnyIndex,
        /// The corpus it was built over.
        corpus: Arc<WeightedString>,
    },
    /// A self-contained sharded composite.
    Sharded(ShardedIndex),
    /// A mutable live index (self-contained: segments and memtable own
    /// the corpus). The `Arc` is shared, not swapped — the live index
    /// performs its own internal snapshot/swap per mutation, so `APPEND`
    /// / `DELETE_RANGE` / `FLUSH` / `COMPACT` work through the same
    /// serving snapshot while queries keep running.
    Live(Arc<LiveIndex>),
}

impl ServedIndex {
    /// Pairs a single-machine index with its corpus.
    pub fn single(index: AnyIndex, corpus: Arc<WeightedString>) -> Self {
        ServedIndex::Single { index, corpus }
    }

    /// Wraps a self-contained sharded index.
    pub fn sharded(index: ShardedIndex) -> Self {
        ServedIndex::Sharded(index)
    }

    /// Wraps a mutable live index (enables the `APPEND` / `DELETE_RANGE`
    /// / `FLUSH` / `COMPACT` wire ops).
    pub fn live(index: Arc<LiveIndex>) -> Self {
        ServedIndex::Live(index)
    }

    /// Loads a persisted index file of any family. Single-machine families
    /// need the corpus they were built over; sharded files are
    /// self-contained and ignore `corpus`.
    ///
    /// # Errors
    ///
    /// I/O and `InvalidData` errors of `ius_index::persist`, plus
    /// `InvalidInput` when a single-machine file is loaded without a
    /// corpus — or with a corpus whose length does not match the one
    /// recorded in the file (minimizer families record it; a mismatch
    /// would otherwise surface only as per-query panics or wrong
    /// answers).
    pub fn load(path: &Path, corpus: Option<Arc<WeightedString>>) -> io::Result<Self> {
        // One read into a single arena. Version-3 files then open
        // zero-copy — every array view (and a hot reload's new serving
        // snapshot) borrows the same Arc-shared buffer — while version-2
        // files stream-decode from the same bytes.
        let arena = Arena::from_file(path)?;
        match open_any_index(&arena)? {
            LoadedAny::Sharded(index) => Ok(ServedIndex::Sharded(index)),
            LoadedAny::Index(index) => {
                let corpus = corpus.ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "{} is a single-machine index file; serving it needs the corpus \
                             it was built over (sharded files are self-contained)",
                            path.display()
                        ),
                    )
                })?;
                if let Some(expected) = index.corpus_len_hint() {
                    if corpus.len() != expected {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!(
                                "{} was built over a corpus of length {expected}, but the \
                                 supplied corpus has length {} — wrong --n, preset or seed?",
                                path.display(),
                                corpus.len()
                            ),
                        ));
                    }
                }
                Ok(ServedIndex::Single { index, corpus })
            }
        }
    }

    /// The sink-based query entry point (see
    /// [`UncertainIndex::query_into`]).
    ///
    /// When the calling thread carries an armed request trace, the whole
    /// dispatch runs under a `query` span. Sharded and live indexes record
    /// their per-part stage groups internally (they know the fan-out);
    /// single-machine indexes report one flat stage breakdown, recorded
    /// here from the returned stats.
    ///
    /// # Errors
    ///
    /// The engine's pattern-contract errors.
    pub fn query_into(
        &self,
        pattern: &[u8],
        scratch: &mut QueryScratch,
        sink: &mut dyn ius_query::MatchSink,
    ) -> ius_weighted::Result<ius_query::QueryStats> {
        let traced = trace::active();
        if traced {
            trace::enter(trace::STAGE_QUERY);
        }
        let result = match self {
            ServedIndex::Single { index, corpus } => {
                index.query_into(pattern, corpus, scratch, sink)
            }
            ServedIndex::Sharded(index) => index.query_owned_into(pattern, scratch, sink),
            ServedIndex::Live(index) => index.query_owned_into(pattern, scratch, sink),
        };
        if traced {
            match &result {
                Ok(stats) => {
                    if matches!(self, ServedIndex::Single { .. }) && stats.timed {
                        trace::leaf(trace::STAGE_SCAN, stats.scan_ns, 0, 0);
                        trace::leaf(trace::STAGE_LOCATE, stats.locate_ns, 0, 0);
                        trace::leaf(
                            trace::STAGE_VERIFY,
                            stats.verify_ns,
                            stats.candidates as u64,
                            0,
                        );
                        trace::leaf(trace::STAGE_REPORT, stats.report_ns, 0, 0);
                    }
                    trace::exit_with(stats.candidates as u64, stats.reported as u64);
                }
                Err(_) => trace::exit_with(0, 0),
            }
        }
        result
    }

    /// Display name of the served structure.
    pub fn name(&self) -> String {
        match self {
            ServedIndex::Single { index, .. } => index.name().to_string(),
            ServedIndex::Sharded(index) => index.stats().name,
            ServedIndex::Live(index) => index.stats().name,
        }
    }

    /// Length of the served corpus.
    pub fn corpus_len(&self) -> usize {
        match self {
            ServedIndex::Single { corpus, .. } => corpus.len(),
            ServedIndex::Sharded(index) => index.len(),
            ServedIndex::Live(index) => index.len(),
        }
    }

    /// Heap bytes of the served index structure.
    pub fn size_bytes(&self) -> usize {
        match self {
            ServedIndex::Single { index, .. } => index.size_bytes(),
            ServedIndex::Sharded(index) => index.size_bytes(),
            ServedIndex::Live(index) => index.size_bytes(),
        }
    }

    /// The live index, when one is served (the target of the live wire
    /// ops).
    fn live_index(&self) -> Option<&Arc<LiveIndex>> {
        match self {
            ServedIndex::Live(index) => Some(index),
            _ => None,
        }
    }

    /// The shared corpus, when one is attached (used by reloads so a new
    /// single-machine index file can be served against the same `X`).
    fn corpus(&self) -> Option<Arc<WeightedString>> {
        match self {
            ServedIndex::Single { corpus, .. } => Some(corpus.clone()),
            ServedIndex::Sharded(_) | ServedIndex::Live(_) => None,
        }
    }
}

/// One immutable serving snapshot: what `Arc` swaps exchange.
#[derive(Debug)]
struct ServedState {
    index: ServedIndex,
    generation: u64,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each owns a scratch and serves one connection at a
    /// time). At least 1.
    pub workers: usize,
    /// Admission-queue capacity: connections waiting beyond the ones being
    /// served. Full queue ⇒ typed `OVERLOADED` refusal. At least 1.
    pub queue_depth: usize,
    /// Poll interval of connection reads: the upper bound on how long an
    /// idle connection can delay a worker noticing shutdown.
    pub poll_interval: Duration,
    /// Connections idle (no frame) longer than this are closed, releasing
    /// the worker — without it, `workers` silent keep-alive clients would
    /// pin the whole pool while admitted connections starve in the queue.
    pub idle_timeout: Duration,
    /// Queries at least this slow land in the slow-query ring surfaced by
    /// `METRICS` (`Duration::ZERO` logs every query; handy in tests).
    pub slow_query_threshold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_depth: 64,
            poll_interval: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(60),
            slow_query_threshold: Duration::from_millis(50),
        }
    }
}

struct Shared {
    state: Mutex<Arc<ServedState>>,
    reload_path: Option<PathBuf>,
    metrics: ServerMetrics,
    /// One private histogram registry per worker (indexed like the worker
    /// threads); merged only on a `METRICS` scrape.
    worker_obs: Vec<Arc<WorkerObs>>,
    /// Shared ring of threshold-crossing queries (with pattern prefixes).
    slow_log: SlowRing,
    slow_query_threshold_ns: u64,
    /// Rings of sampled complete request traces, drained by `TRACE_DUMP`
    /// and dumped to stderr by the panic hook.
    flight: Arc<FlightRecorder>,
    queue: AdmissionQueue,
    shutdown: AtomicBool,
    addr: SocketAddr,
    workers: usize,
    queue_depth: usize,
    poll_interval: Duration,
    idle_timeout: Duration,
}

/// A running server. Dropping the handle does **not** stop the threads;
/// call [`Server::shutdown`] (or send a `SHUTDOWN` frame and then
/// [`Server::join`]).
pub struct Server {
    shared: Arc<Shared>,
    /// The acceptor and worker threads, tracked by the shared
    /// [`WorkerPool`] (joined on shutdown; a dropped handle detaches).
    pool: WorkerPool,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and worker threads serving `index`. `reload_path` is the
    /// file a path-less `RELOAD` re-reads — pass the startup index path.
    ///
    /// # Errors
    ///
    /// Socket errors of the bind.
    pub fn bind(
        addr: impl ToSocketAddrs,
        index: ServedIndex,
        reload_path: Option<PathBuf>,
        config: &ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // The first timed operation must not pay the clock's one-time
        // base-instant initialization.
        clock::warm_up();
        let workers = config.workers.max(1);
        let flight = Arc::new(FlightRecorder::new());
        register_flight_panic_hook(&flight);
        let shared = Arc::new(Shared {
            state: Mutex::new(Arc::new(ServedState {
                index,
                generation: 0,
            })),
            reload_path,
            metrics: ServerMetrics::new(),
            worker_obs: (0..workers).map(|_| Arc::new(WorkerObs::new())).collect(),
            slow_log: SlowRing::new(128),
            flight,
            slow_query_threshold_ns: config.slow_query_threshold.as_nanos() as u64,
            queue: AdmissionQueue::new(config.queue_depth),
            shutdown: AtomicBool::new(false),
            addr,
            workers,
            queue_depth: config.queue_depth.max(1),
            poll_interval: config.poll_interval,
            idle_timeout: config.idle_timeout,
        });
        let mut pool = WorkerPool::new();
        {
            let shared = shared.clone();
            pool.spawn("ius-accept", move || accept_loop(&shared, &listener));
        }
        for i in 0..shared.workers {
            let shared = shared.clone();
            pool.spawn(&format!("ius-worker-{i}"), move || worker_loop(&shared, i));
        }
        Ok(Server { shared, pool })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The current index generation (0 at startup, +1 per reload).
    pub fn generation(&self) -> u64 {
        self.shared.state.lock().expect("state lock").generation
    }

    /// A scrape handle that outlives the consuming [`Server::join`] /
    /// [`Server::shutdown`]: the `serve` binary's periodic metrics dump
    /// thread holds one while the main thread blocks in `join`.
    pub fn metrics_handle(&self) -> MetricsHandle {
        MetricsHandle {
            shared: self.shared.clone(),
        }
    }

    /// Initiates a graceful shutdown and joins every thread: in-flight
    /// requests complete, queued-but-unserved connections are answered
    /// with `SHUTTING_DOWN`.
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.shared);
        self.join_threads();
    }

    /// Waits for a shutdown initiated elsewhere (a client `SHUTDOWN`
    /// frame), then cleans up — what the `serve` binary blocks on.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        self.pool.join_all();
        // Everything still queued was never served: tell the clients.
        let mut out = Vec::new();
        for mut stream in self.shared.queue.drain() {
            encode_response(
                0,
                &Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server shut down before this connection was served".into(),
                },
                &mut out,
            );
            let _ = stream.write_all(&out);
        }
    }
}

/// A cloneable local scrape handle onto a running server — the same
/// snapshot a wire `METRICS` request answers, without a connection.
#[derive(Clone)]
pub struct MetricsHandle {
    shared: Arc<Shared>,
}

impl MetricsHandle {
    /// Merges the per-worker registries (and the live/WAL view, when a
    /// live index is served) into one snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        metrics_snapshot(&self.shared)
    }

    /// Whether the server has begun shutting down (lets a dump thread
    /// exit promptly).
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// Builds the `METRICS` answer: merge every worker registry plus the
/// slow-query ring, and sample the live index's observability if one is
/// served. Runs on the scrape path — allocation is fine here.
fn metrics_snapshot(shared: &Shared) -> MetricsSnapshot {
    let state = shared.state.lock().expect("state lock").clone();
    let live_view = match state.index.live_index() {
        Some(live) => {
            let obs = live.obs_snapshot();
            let stats = live.live_stats();
            LiveObsView {
                flush: obs.flush,
                compaction: obs.compaction,
                wal_fsync: obs.wal_fsync,
                segments: stats.segments as u64,
                memtable_rows: stats.memtable_rows as u64,
                swap_in_races: obs.swap_in_races,
                compaction_errors: stats.compaction_errors,
                wal_replay_records: obs.replay_records,
                wal_replay_bytes: obs.replay_bytes,
                wal_replay_ns: obs.replay_ns,
                last_error: stats.last_error.unwrap_or_default(),
            }
        }
        None => LiveObsView::default(),
    };
    merge_worker_obs(
        &shared.worker_obs,
        &shared.slow_log,
        shared.slow_query_threshold_ns,
        live_view,
        shared.flight.occupancy(),
    )
}

/// Flight recorders of every server bound in this process, reachable by
/// the (installed-once) panic hook. Weak: the hook must not keep a
/// shut-down server's rings alive.
static HOOKED_FLIGHTS: Mutex<Vec<Weak<FlightRecorder>>> = Mutex::new(Vec::new());
static FLIGHT_HOOK: Once = Once::new();

/// Registers `flight` with the process-wide panic hook: when any thread
/// panics, every live recorder dumps its surviving traces to stderr —
/// the last K requests before the crash, which is the whole point of a
/// flight recorder. Chains the previously installed hook.
fn register_flight_panic_hook(flight: &Arc<FlightRecorder>) {
    {
        let mut flights = HOOKED_FLIGHTS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        flights.retain(|w| w.strong_count() > 0);
        flights.push(Arc::downgrade(flight));
    }
    FLIGHT_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            let flights = HOOKED_FLIGHTS
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for flight in flights.iter().filter_map(Weak::upgrade) {
                eprintln!("{}", flight.render());
            }
        }));
    });
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    shared.queue.close();
    // Wake the acceptor out of its blocking accept. A wildcard bind
    // (0.0.0.0 / ::) is not connectable on every platform, so aim the
    // wake-up at loopback on the same port.
    let mut wake = shared.addr;
    if wake.ip().is_unspecified() {
        wake.set_ip(match wake {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect(wake);
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    let mut out = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (e.g. the process is out of file
                // descriptors) must not busy-spin a core; back off briefly.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection from trigger_shutdown lands here; any
            // real late connection gets the same typed answer.
            let mut stream = stream;
            encode_response(
                0,
                &Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".into(),
                },
                &mut out,
            );
            let _ = stream.write_all(&out);
            return;
        }
        ServerMetrics::inc(&shared.metrics.connections);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(shared.poll_interval));
        if let Err(mut refused) = shared.queue.try_push(stream, clock::now_ns()) {
            ServerMetrics::inc(&shared.metrics.overloaded);
            encode_response(
                0,
                &Response::Error {
                    code: ErrorCode::Overloaded,
                    message: format!(
                        "admission queue full ({} waiting); retry later",
                        shared.queue_depth
                    ),
                },
                &mut out,
            );
            let _ = refused.write_all(&out);
            // Dropping the stream closes the refused connection.
        }
    }
}

/// Per-worker reusable buffers: with these warmed up, answering a
/// collect/count query allocates nothing beyond what the engine scratch
/// already owns (the pattern is borrowed straight out of the frame buffer,
/// never copied). The frame buffer lives outside this struct so its borrow
/// can overlap the mutable use of the rest.
struct WorkerBuffers {
    scratch: QueryScratch,
    positions: Vec<usize>,
    out: Vec<u8>,
}

impl WorkerBuffers {
    fn new() -> Self {
        Self {
            scratch: QueryScratch::new(),
            positions: Vec::new(),
            out: Vec::new(),
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut frame = Vec::new();
    let mut buffers = WorkerBuffers::new();
    // The registry outlives any panic recovery below: recorded history is
    // never lost with the buffers.
    let obs = shared.worker_obs[worker].clone();
    while let Some((stream, accepted_ns)) = shared.queue.pop() {
        let mut queue_wait_ns = 0;
        if clock::enabled() {
            queue_wait_ns = clock::now_ns().saturating_sub(accepted_ns);
            obs.queue_wait.record(queue_wait_ns);
        }
        // A panic while serving (an engine bug, an incompatible reloaded
        // index) must cost one connection, not a pool slot: catch it, drop
        // the possibly inconsistent buffers, keep serving.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(
                shared,
                &obs,
                stream,
                &mut frame,
                &mut buffers,
                queue_wait_ns,
            );
        }));
        if outcome.is_err() {
            eprintln!("ius-server worker recovered from a panic; connection dropped");
            // A trace armed by the aborted request must not leak spans
            // into whatever this thread serves next.
            trace::abandon();
            frame = Vec::new();
            buffers = WorkerBuffers::new();
        }
    }
}

enum FrameOutcome {
    Frame,
    Eof,
    Shutdown,
}

/// How long a frame may take to arrive once its first byte is on the
/// socket. A peer that stalls longer mid-frame is dropped.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Waits for the next frame, polling the shutdown flag while the
/// connection is idle so it cannot pin a worker across shutdown, and
/// closing connections idle beyond the configured `idle_timeout` so a
/// handful of silent keep-alive clients cannot pin the whole pool while
/// admitted connections starve in the queue.
///
/// The idle wait uses `peek` (non-consuming), so timing out never desyncs
/// the stream; once the first byte is visible the whole frame is read
/// under the longer [`FRAME_READ_TIMEOUT`]. A fully received frame is
/// always answered — only waits *between* frames are interruptible.
fn read_frame_or_shutdown(
    stream: &mut TcpStream,
    shared: &Shared,
    frame: &mut Vec<u8>,
) -> io::Result<FrameOutcome> {
    let mut probe = [0u8; 1];
    let idle_since = std::time::Instant::now();
    loop {
        match stream.peek(&mut probe) {
            Ok(0) => return Ok(FrameOutcome::Eof),
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(FrameOutcome::Shutdown);
                }
                if idle_since.elapsed() >= shared.idle_timeout {
                    return Ok(FrameOutcome::Eof);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    stream.set_read_timeout(Some(FRAME_READ_TIMEOUT))?;
    let result = read_frame(stream, MAX_REQUEST_FRAME, frame);
    stream.set_read_timeout(Some(shared.poll_interval))?;
    match result {
        Ok(true) => Ok(FrameOutcome::Frame),
        Ok(false) => Ok(FrameOutcome::Eof),
        Err(e) => Err(e),
    }
}

fn send(stream: &mut TcpStream, out: &[u8]) -> io::Result<()> {
    stream.write_all(out)
}

/// What request traces carry of the wire frame: the `ErrorCode` byte of a
/// typed error response sits at this absolute offset in the encoded frame
/// (4-byte length prefix + 14-byte header + the status byte at 18 being
/// `ST_ERROR`).
const FRAME_STATUS_OFFSET: usize = 18;

fn handle_connection(
    shared: &Shared,
    obs: &WorkerObs,
    mut stream: TcpStream,
    frame: &mut Vec<u8>,
    buffers: &mut WorkerBuffers,
    queue_wait_ns: u64,
) {
    // Per-request timing is always on (the slow-query log must see every
    // request), but feeding the service histogram is sampled at the same
    // 1-in-[`clock::STAGE_SAMPLE_EVERY`] rate as stage tracing: under a
    // large index working set the histogram's cache lines are cold on
    // every request, so an unconditional record costs a couple of hundred
    // nanoseconds of misses. The first request on each connection is
    // always recorded, so scrapes see per-op service data immediately.
    //
    // Request tracing rides the same ticket: the requests that feed the
    // service histogram are exactly the ones that record a span tree into
    // the flight recorder, so the two views describe the same sample.
    let mut service_tick: u32 = 0;
    loop {
        match read_frame_or_shutdown(&mut stream, shared, frame) {
            Ok(FrameOutcome::Frame) => {}
            Ok(FrameOutcome::Eof) => return,
            Ok(FrameOutcome::Shutdown) => {
                encode_response(
                    0,
                    &Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is shutting down".into(),
                    },
                    &mut buffers.out,
                );
                let _ = send(&mut stream, &buffers.out);
                return;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized length prefix: refuse with a typed frame, then
                // close (the stream offset can no longer be trusted).
                ServerMetrics::inc(&shared.metrics.protocol_errors);
                encode_response(
                    0,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                    &mut buffers.out,
                );
                let _ = send(&mut stream, &buffers.out);
                return;
            }
            Err(_) => return, // transport error: drop the connection
        }
        ServerMetrics::inc(&shared.metrics.requests);
        // Service time covers body decode + answer + send — everything the
        // worker does for this frame after it has arrived.
        let service_start = clock::now_ns();
        let sampled = clock::enabled() && service_tick.is_multiple_of(clock::STAGE_SAMPLE_EVERY);
        // Arm the thread-local span buffer for a sampled request. The
        // queue-wait leaf belongs to the connection's first request only
        // (pops happen once per connection, not per frame).
        let armed = sampled && trace::begin(trace::next_trace_id());
        if armed {
            if service_tick == 0 {
                trace::leaf(trace::STAGE_QUEUE_WAIT, queue_wait_ns, 0, 0);
            }
            trace::enter(trace::STAGE_FRAME_DECODE);
        }
        let (id, op, body) = match decode_header(frame) {
            Ok(parts) => parts,
            Err(err) => {
                // The stream cannot be trusted to be frame-aligned after a
                // header-level violation: answer once, then close.
                trace::abandon();
                ServerMetrics::inc(&shared.metrics.protocol_errors);
                let code = match err {
                    ProtocolError::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
                    _ => ErrorCode::Malformed,
                };
                encode_response(
                    0,
                    &Response::Error {
                        code,
                        message: err.to_string(),
                    },
                    &mut buffers.out,
                );
                let _ = send(&mut stream, &buffers.out);
                return;
            }
        };
        // Hot path: QUERY bodies are decoded borrowing the pattern straight
        // out of the frame buffer (no per-request allocation); other ops go
        // through the owned decoder.
        enum Decoded<'a> {
            Query(ResultMode, &'a [u8]),
            Other(Request),
            Bad(ProtocolError),
        }
        let decoded = match decode_query_body(op, body) {
            Some(Ok((mode, pattern))) => Decoded::Query(mode, pattern),
            Some(Err(err)) => Decoded::Bad(err),
            None => match decode_request_body(op, body) {
                Ok(request) => Decoded::Other(request),
                Err(err) => Decoded::Bad(err),
            },
        };
        if armed {
            trace::exit_with(frame.len() as u64, 0); // frame_decode
        }
        let close_after;
        // The slow-query probe (pattern length, prefix, reported count) of
        // a successfully answered query, fed to the slow-query ring if
        // this request turns out slow. Carried out of the answer path so
        // the slow check can reuse the service-end clock stamp instead of
        // reading the clock again.
        let mut slow_probe = None;
        match decoded {
            Decoded::Query(mode, pattern) => {
                close_after = false;
                slow_probe = answer_query(shared, obs, id, mode, pattern, buffers);
            }
            Decoded::Other(request) => {
                close_after = matches!(request, Request::Shutdown);
                slow_probe = answer(shared, obs, id, request, buffers);
            }
            Decoded::Bad(err) => {
                // Body-level violations leave the framing intact: answer
                // with the request's own id and keep the connection.
                close_after = false;
                body_error(shared, id, &err, &mut buffers.out);
            }
        }
        if armed {
            trace::enter(trace::STAGE_RESPONSE_WRITE);
        }
        let sent = send(&mut stream, &buffers.out);
        if armed {
            trace::exit_with(buffers.out.len() as u64, 0);
            // The trace is complete (write span included): copy it into
            // the flight recorder. A typed error response pins the trace —
            // the error code sits at a fixed frame offset, so no error
            // state needs threading through the answer paths.
            let total_ns = clock::now_ns().saturating_sub(service_start);
            let error = match buffers.out.get(FRAME_STATUS_OFFSET) {
                Some(&255) => buffers
                    .out
                    .get(FRAME_STATUS_OFFSET + 1)
                    .copied()
                    .unwrap_or(TRACE_NO_ERROR),
                _ => TRACE_NO_ERROR,
            };
            trace::finish(|buf| shared.flight.record(buf, op, error, total_ns));
        }
        if sent.is_err() {
            return;
        }
        if clock::enabled() {
            let elapsed = clock::now_ns().saturating_sub(service_start);
            if sampled {
                obs.record_service(op, elapsed);
            }
            service_tick = service_tick.wrapping_add(1);
            if elapsed >= shared.slow_query_threshold_ns {
                if let Some(probe) = slow_probe {
                    shared.slow_log.record(
                        elapsed,
                        probe.pattern_len,
                        probe.prefix(),
                        probe.reported,
                    );
                }
            }
        }
        if close_after {
            return;
        }
    }
}

/// What the slow-query ring needs of a successfully answered query,
/// carried (as a fixed-size copy — the borrowed pattern dies with the
/// answer path) from the answer to the service-end slow check.
#[derive(Clone, Copy)]
struct SlowProbe {
    pattern_len: u64,
    reported: u64,
    prefix_len: u8,
    prefix: [u8; SLOW_QUERY_PREFIX_LEN],
}

impl SlowProbe {
    fn new(pattern: &[u8], reported: u64) -> Self {
        let n = pattern.len().min(SLOW_QUERY_PREFIX_LEN);
        let mut prefix = [0u8; SLOW_QUERY_PREFIX_LEN];
        prefix[..n].copy_from_slice(&pattern[..n]);
        Self {
            pattern_len: pattern.len() as u64,
            reported,
            prefix_len: n as u8,
            prefix,
        }
    }

    fn prefix(&self) -> &[u8] {
        &self.prefix[..self.prefix_len as usize]
    }
}

/// Encodes the typed error frame for a body-level protocol violation.
fn body_error(shared: &Shared, id: u64, err: &ProtocolError, out: &mut Vec<u8>) {
    ServerMetrics::inc(&shared.metrics.protocol_errors);
    let code = match err {
        ProtocolError::UnknownOp(_) => ErrorCode::UnknownOp,
        _ => ErrorCode::Malformed,
    };
    encode_response(
        id,
        &Response::Error {
            code,
            message: err.to_string(),
        },
        out,
    );
}

/// Answers one query, borrowing the pattern from the caller's frame
/// buffer — the hot path. With warmed buffers, collect and count modes
/// allocate nothing beyond what the engine scratch already owns.
///
/// Returns the [`SlowProbe`] of a successful query so the worker loop can
/// feed the slow-query ring from the service-time stamp it takes anyway,
/// and `None` when the query failed (failures answer a typed error and
/// are not slow-log material).
fn answer_query(
    shared: &Shared,
    obs: &WorkerObs,
    id: u64,
    mode: ResultMode,
    pattern: &[u8],
    buffers: &mut WorkerBuffers,
) -> Option<SlowProbe> {
    // Snapshot the served index: a reload swapping the Arc while this
    // query runs does not affect it, and the old index stays alive until
    // the last in-flight query drops its clone.
    let state = shared.state.lock().expect("state lock").clone();
    // Per-stage recording, allocation-free. Only queries that drew a
    // stage-tracing ticket carry stamped stage fields; recording the
    // zeros of an untimed query would drown the histograms.
    let record = |stats: &ius_query::QueryStats| {
        if stats.timed {
            obs.record_query_stages(stats);
        }
    };
    match mode {
        ResultMode::Collect => {
            buffers.positions.clear();
            match state
                .index
                .query_into(pattern, &mut buffers.scratch, &mut buffers.positions)
            {
                Ok(stats) => {
                    record(&stats);
                    ServerMetrics::inc(&shared.metrics.queries);
                    ServerMetrics::add(&shared.metrics.occurrences, buffers.positions.len() as u64);
                    let traced = trace::active();
                    if traced {
                        trace::enter(trace::STAGE_RESPONSE_ENCODE);
                    }
                    encode_matches_from_slice(
                        id,
                        &stats.into(),
                        &buffers.positions,
                        &mut buffers.out,
                    );
                    if traced {
                        trace::exit_with(buffers.out.len() as u64, 0);
                    }
                    Some(SlowProbe::new(pattern, buffers.positions.len() as u64))
                }
                Err(err) => {
                    query_error(shared, id, &err, &mut buffers.out);
                    None
                }
            }
        }
        ResultMode::Count => {
            let mut sink = CountSink::new();
            match state
                .index
                .query_into(pattern, &mut buffers.scratch, &mut sink)
            {
                Ok(stats) => {
                    record(&stats);
                    ServerMetrics::inc(&shared.metrics.queries);
                    ServerMetrics::add(&shared.metrics.occurrences, sink.count as u64);
                    let traced = trace::active();
                    if traced {
                        trace::enter(trace::STAGE_RESPONSE_ENCODE);
                    }
                    encode_response(
                        id,
                        &Response::Count {
                            stats: stats.into(),
                            count: sink.count as u64,
                        },
                        &mut buffers.out,
                    );
                    if traced {
                        trace::exit_with(buffers.out.len() as u64, 0);
                    }
                    Some(SlowProbe::new(pattern, sink.count as u64))
                }
                Err(err) => {
                    query_error(shared, id, &err, &mut buffers.out);
                    None
                }
            }
        }
        ResultMode::FirstK(k) => {
            let mut sink = FirstKSink::new(usize::try_from(k).unwrap_or(usize::MAX));
            match state
                .index
                .query_into(pattern, &mut buffers.scratch, &mut sink)
            {
                Ok(stats) => {
                    record(&stats);
                    ServerMetrics::inc(&shared.metrics.queries);
                    ServerMetrics::add(&shared.metrics.occurrences, sink.positions.len() as u64);
                    let traced = trace::active();
                    if traced {
                        trace::enter(trace::STAGE_RESPONSE_ENCODE);
                    }
                    encode_matches_from_slice(id, &stats.into(), &sink.positions, &mut buffers.out);
                    if traced {
                        trace::exit_with(buffers.out.len() as u64, 0);
                    }
                    Some(SlowProbe::new(pattern, sink.positions.len() as u64))
                }
                Err(err) => {
                    query_error(shared, id, &err, &mut buffers.out);
                    None
                }
            }
        }
    }
}

/// Builds the response frame for one well-formed request into
/// `buffers.out`. Returns the slow-query probe of a successful query
/// (see [`answer_query`]); every other op answers `None`.
fn answer(
    shared: &Shared,
    obs: &WorkerObs,
    id: u64,
    request: Request,
    buffers: &mut WorkerBuffers,
) -> Option<SlowProbe> {
    match request {
        Request::Ping => encode_response(id, &Response::Pong, &mut buffers.out),
        Request::Query { mode, pattern } => {
            return answer_query(shared, obs, id, mode, &pattern, buffers)
        }
        Request::Stats => {
            let state = shared.state.lock().expect("state lock").clone();
            let durability = match state.index.live_index() {
                Some(live) => {
                    let stats = live.live_stats();
                    DurabilityView {
                        wal_records: stats.wal_records,
                        wal_bytes: stats.wal_bytes,
                        recoveries: stats.recoveries,
                        recovered_records: stats.recovered_records,
                        fsync_policy: stats.fsync_policy,
                        compaction_errors: stats.compaction_errors,
                        last_error: stats.last_error,
                    }
                }
                None => DurabilityView::default(),
            };
            let snapshot: StatsSnapshot = shared.metrics.snapshot(
                state.index.name(),
                state.generation,
                state.index.corpus_len() as u64,
                state.index.size_bytes() as u64,
                shared.workers as u64,
                shared.queue_depth as u64,
                durability,
            );
            encode_response(id, &Response::Stats(snapshot), &mut buffers.out);
        }
        Request::Reload { path } => match reload(shared, path.as_deref()) {
            Ok(generation) => {
                ServerMetrics::inc(&shared.metrics.reloads);
                encode_response(id, &Response::Reloaded { generation }, &mut buffers.out);
            }
            Err(message) => {
                encode_response(
                    id,
                    &Response::Error {
                        code: ErrorCode::Reload,
                        message,
                    },
                    &mut buffers.out,
                );
            }
        },
        Request::Metrics => {
            encode_response(
                id,
                &Response::Metrics(metrics_snapshot(shared)),
                &mut buffers.out,
            );
        }
        Request::TraceDump => {
            encode_response(
                id,
                &Response::TraceDump {
                    format_version: TRACE_FORMAT_VERSION,
                    records: shared.flight.snapshot(),
                },
                &mut buffers.out,
            );
        }
        Request::Shutdown => {
            trigger_shutdown(shared);
            encode_response(id, &Response::ShuttingDown, &mut buffers.out);
        }
        Request::Append { .. }
        | Request::DeleteRange { .. }
        | Request::Flush
        | Request::Compact { .. } => answer_live(shared, id, request, &mut buffers.out),
    }
    None
}

/// Answers one live-corpus mutation. A server not serving a live index
/// refuses with a typed `LIVE_ERROR`; engine-side failures (alphabet
/// mismatch, malformed rows, out-of-range delete, segment build errors)
/// come back typed the same way — never as a panic or a hangup.
fn answer_live(shared: &Shared, id: u64, request: Request, out: &mut Vec<u8>) {
    let state = shared.state.lock().expect("state lock").clone();
    let Some(live) = state.index.live_index() else {
        ServerMetrics::inc(&shared.metrics.live_errors);
        encode_response(
            id,
            &Response::Error {
                code: ErrorCode::Live,
                message: format!(
                    "this server serves a static {} index; live mutations need `serve --live`",
                    state.index.name()
                ),
            },
            out,
        );
        return;
    };
    // Matched by value so the APPEND body moves straight into the
    // WeightedString — no copy of a potentially 16 MB batch.
    let outcome: Result<u64, String> = match request {
        Request::Append { sigma, probs } => {
            let expected = live.alphabet().size() as u64;
            if sigma != expected {
                Err(format!(
                    "appended rows are over sigma = {sigma}, the live index over sigma = {expected}"
                ))
            } else if probs.is_empty() {
                Err("APPEND carried no rows".into())
            } else {
                // Row validation (arity, [0, 1] entries, unit sums) happens
                // in the WeightedString constructor.
                WeightedString::from_flat(live.alphabet().clone(), probs)
                    .map_err(|e| e.to_string())
                    .and_then(|batch| {
                        let rows = batch.len() as u64;
                        live.append(&batch).map_err(|e| e.to_string()).map(|_| rows)
                    })
                    .inspect(|rows| {
                        ServerMetrics::add(&shared.metrics.appended_positions, *rows);
                    })
            }
        }
        Request::DeleteRange { start, end } => {
            let (start, end) = (start as usize, end as usize);
            live.delete_range(start, end)
                .map_err(|e| e.to_string())
                .map(|()| (end - start) as u64)
                .inspect(|_| ServerMetrics::inc(&shared.metrics.delete_ranges))
        }
        Request::Flush => {
            let before = live.live_stats().segments as u64;
            live.flush().map_err(|e| e.to_string()).map(|frozen| {
                if frozen {
                    ServerMetrics::inc(&shared.metrics.flushes);
                    // A concurrent compaction may already have merged the
                    // frozen segments; never underflow.
                    (live.live_stats().segments as u64)
                        .saturating_sub(before)
                        .max(1)
                } else {
                    0
                }
            })
        }
        Request::Compact { full } => {
            let merges = if full {
                live.compact_full()
            } else {
                live.compact_once()
            };
            merges.map_err(|e| e.to_string()).map(|merges| {
                if merges > 0 {
                    ServerMetrics::inc(&shared.metrics.compactions);
                }
                merges as u64
            })
        }
        _ => unreachable!("answer_live only receives live ops"),
    };
    match outcome {
        Ok(changed) => {
            let stats = live.live_stats();
            encode_response(
                id,
                &Response::Live(LiveSnapshot {
                    corpus_len: stats.corpus_len as u64,
                    segments: stats.segments as u64,
                    memtable_rows: stats.memtable_rows as u64,
                    tombstones: stats.tombstones as u64,
                    changed,
                }),
                out,
            );
        }
        Err(message) => {
            ServerMetrics::inc(&shared.metrics.live_errors);
            encode_response(
                id,
                &Response::Error {
                    code: ErrorCode::Live,
                    message,
                },
                out,
            );
        }
    }
}

fn query_error(shared: &Shared, id: u64, err: &ius_weighted::Error, out: &mut Vec<u8>) {
    ServerMetrics::inc(&shared.metrics.query_errors);
    encode_response(
        id,
        &Response::Error {
            code: ErrorCode::Query,
            message: err.to_string(),
        },
        out,
    );
}

/// Loads the replacement index **off-lock**, then swaps the `Arc` under the
/// lock. Returns the new generation.
///
/// **Contract:** a reloaded *single-machine* file must contain an index
/// built over the corpus the server is already serving — the file stores
/// the structure, not `X`. Minimizer files record the corpus *length*, so
/// a wrong-length swap fails here with a typed `RELOAD_ERROR`; a
/// same-length different corpus cannot be detected (no content
/// fingerprint is stored) and yields wrong answers (or a panicked query,
/// which costs that connection but not the worker — see `worker_loop`).
/// Sharded files are self-contained and immune.
fn reload(shared: &Shared, path: Option<&str>) -> Result<u64, String> {
    if shared
        .state
        .lock()
        .expect("state lock")
        .index
        .live_index()
        .is_some()
    {
        return Err(
            "this server serves a live index, which mutates in place (APPEND/DELETE_RANGE/\
             FLUSH/COMPACT); RELOAD is not supported — persist and reopen via the ius_live \
             manifest instead"
                .into(),
        );
    }
    let path: PathBuf = match (path, &shared.reload_path) {
        (Some(p), _) => PathBuf::from(p),
        (None, Some(p)) => p.clone(),
        (None, None) => {
            return Err(
                "no reload path: the server was started from an in-memory index and the \
                 RELOAD frame named no file"
                    .into(),
            )
        }
    };
    // A reloaded single-machine index is served against the corpus already
    // attached (the file stores the structure, not X); sharded files are
    // self-contained.
    let corpus = shared.state.lock().expect("state lock").index.corpus();
    let index = ServedIndex::load(&path, corpus)
        .map_err(|e| format!("reload of {} failed: {e}", path.display()))?;
    let mut state = shared.state.lock().expect("state lock");
    let generation = state.generation + 1;
    *state = Arc::new(ServedState { index, generation });
    Ok(generation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_sane() {
        let config = ServerConfig::default();
        assert!(config.workers >= 1);
        assert!(config.queue_depth >= 1);
        assert!(config.poll_interval > Duration::ZERO);
    }

    #[test]
    fn served_index_load_requires_a_corpus_for_single_machine_files() {
        use ius_datasets::uniform::UniformConfig;
        use ius_index::{IndexFamily, IndexParams, IndexSpec};
        let x = UniformConfig {
            n: 120,
            sigma: 2,
            spread: 0.4,
            seed: 9,
        }
        .generate();
        let params = IndexParams::new(4.0, 8, x.sigma()).unwrap();
        let index = IndexSpec::new(IndexFamily::Wsa, params).build(&x).unwrap();
        let dir = std::env::temp_dir().join(format!("ius-served-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wsa.iusx");
        let mut file = std::fs::File::create(&path).unwrap();
        index.save_to(&mut file).unwrap();
        drop(file);
        let err = ServedIndex::load(&path, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let served = ServedIndex::load(&path, Some(Arc::new(x.clone()))).unwrap();
        assert_eq!(served.corpus_len(), 120);
        assert_eq!(served.name(), "WSA");
        assert!(served.size_bytes() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn served_index_load_rejects_a_corpus_of_the_wrong_length() {
        use ius_datasets::uniform::UniformConfig;
        use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexVariant};
        let x = UniformConfig {
            n: 300,
            sigma: 2,
            spread: 0.4,
            seed: 4,
        }
        .generate();
        let params = IndexParams::new(4.0, 8, x.sigma()).unwrap();
        let index = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::Array), params)
            .build(&x)
            .unwrap();
        let dir = std::env::temp_dir().join(format!("ius-served-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mwsa.iusx");
        index
            .save_to(&mut std::fs::File::create(&path).unwrap())
            .unwrap();
        // The minimizer file records |X| = 300; a 150-long corpus must be
        // refused at load time, not fail per-query.
        let short = UniformConfig {
            n: 150,
            sigma: 2,
            spread: 0.4,
            seed: 4,
        }
        .generate();
        let err = ServedIndex::load(&path, Some(Arc::new(short))).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("300") && err.to_string().contains("150"));
        assert!(ServedIndex::load(&path, Some(Arc::new(x))).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
