//! Client resilience against a flaky listener: bounded backoff retries
//! that reconnect through dropped connections, `OVERLOADED` refusals
//! retried in place, honored read deadlines, a typed give-up once the
//! budget runs dry — and *no* retries for mutations, which are not safe
//! to resend.

use ius_server::protocol::{
    decode_request, encode_response, read_frame, ErrorCode, Response, MAX_REQUEST_FRAME,
};
use ius_server::{Client, ClientConfig, ClientError};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Tight deadlines and fast backoff so the tests run in milliseconds.
fn retry_config(max_retries: u32) -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_secs(2)),
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        max_retries,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(20),
    }
}

/// Answers every well-formed frame on one connection with `PONG` until
/// the peer hangs up.
fn pong_loop(mut conn: TcpStream) {
    let mut buf = Vec::new();
    let mut out = Vec::new();
    while let Ok(true) = read_frame(&mut conn, MAX_REQUEST_FRAME, &mut buf) {
        let (id, _request) = decode_request(&buf).expect("well-formed request");
        encode_response(id, &Response::Pong, &mut out);
        if conn.write_all(&out).is_err() {
            break;
        }
    }
}

#[test]
fn ping_reconnects_through_dropped_connections() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // The first two connections die instantly; the third one serves.
        for _ in 0..2 {
            drop(listener.accept().unwrap());
        }
        let (conn, _) = listener.accept().unwrap();
        pong_loop(conn);
    });
    let mut client = Client::connect_with(addr, retry_config(4)).expect("connect");
    client
        .ping()
        .expect("ping must reconnect through two dropped connections");
    drop(client);
    server.join().unwrap();
}

#[test]
fn overloaded_refusals_are_retried_in_place() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let mut buf = Vec::new();
        let mut out = Vec::new();
        // First frame: refuse admission (pre-parse refusals carry id 0).
        assert!(read_frame(&mut conn, MAX_REQUEST_FRAME, &mut buf).unwrap());
        encode_response(
            0,
            &Response::Error {
                code: ErrorCode::Overloaded,
                message: "queue full, retry later".into(),
            },
            &mut out,
        );
        conn.write_all(&out).unwrap();
        // The retried frame arrives on the *same* connection and is served.
        assert!(read_frame(&mut conn, MAX_REQUEST_FRAME, &mut buf).unwrap());
        let (id, _request) = decode_request(&buf).unwrap();
        encode_response(id, &Response::Pong, &mut out);
        conn.write_all(&out).unwrap();
    });
    let mut client = Client::connect_with(addr, retry_config(2)).expect("connect");
    client.ping().expect("retry past an OVERLOADED refusal");
    drop(client);
    server.join().unwrap();
}

#[test]
fn retry_exhaustion_is_typed_and_bounded() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // Exactly 1 initial connection + 2 reconnects, every one dropped.
        for _ in 0..3 {
            drop(listener.accept().unwrap());
        }
    });
    let mut client = Client::connect_with(addr, retry_config(2)).expect("connect");
    match client.ping() {
        Err(ClientError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 3, "first try plus two retries");
            assert!(matches!(*last, ClientError::Io(_)), "{last:?}");
        }
        other => panic!("exhausted retries must surface typed, got {other:?}"),
    }
    server.join().unwrap();
}

#[test]
fn read_deadline_bounds_a_stalled_server() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // Swallow the request and never answer; exit when the peer
        // hangs up.
        let (mut conn, _) = listener.accept().unwrap();
        let mut sink = [0u8; 256];
        while matches!(conn.read(&mut sink), Ok(n) if n > 0) {}
    });
    let config = ClientConfig {
        read_timeout: Some(Duration::from_millis(100)),
        ..retry_config(0)
    };
    let mut client = Client::connect_with(addr, config).expect("connect");
    let start = Instant::now();
    match client.ping() {
        Err(ClientError::Io(e)) => assert!(
            matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "expected a read timeout, got {e:?}"
        ),
        other => panic!("a stalled server must surface as a transport error, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "the deadline was not honored"
    );
    drop(client);
    server.join().unwrap();
}

#[test]
fn mutations_are_never_retried() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // Serve exactly one connection — and drop it at once. A retried
        // mutation would need a second accept and would hang the client
        // on connection-refused loops instead of failing plainly.
        drop(listener.accept().unwrap());
    });
    let mut client = Client::connect_with(addr, retry_config(3)).expect("connect");
    match client.append_rows(2, vec![0.5, 0.5]) {
        Err(ClientError::Io(_)) => {}
        other => panic!("a mutation on a dead connection must fail plainly, got {other:?}"),
    }
    server.join().unwrap();
}
