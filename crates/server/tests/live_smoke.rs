//! Live-mode serving smoke: starts the real `serve` binary with `--live`,
//! drives APPEND / QUERY / DELETE_RANGE / FLUSH / COMPACT / SHUTDOWN over
//! the wire, then reopens the saved `--live-dir` state with a second server
//! process — the end-to-end path CI exercises.

use ius_datasets::corpora::bench_corpus;
use ius_server::{Client, ClientError, ErrorCode};
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

/// A spawned serve process that is killed (and reaped) if the test panics
/// before the graceful-shutdown path waits on it — a failing assertion
/// must not leak a listening server.
struct ServeGuard {
    child: Option<Child>,
}

impl ServeGuard {
    /// Consumes the guard after a graceful `SHUTDOWN`, asserting a clean
    /// exit.
    fn wait_success(mut self) {
        let status = self
            .child
            .take()
            .expect("child not yet waited")
            .wait()
            .expect("wait for serve");
        assert!(status.success(), "serve exited with {status:?}");
    }
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns the serve binary and parses the bound address off its stdout.
fn spawn_serve(args: &[&str]) -> (ServeGuard, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve binary");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut guard = ServeGuard { child: Some(child) };
    let mut lines = std::io::BufReader::new(stdout).lines();
    for _ in 0..20 {
        let line = lines
            .next()
            .expect("serve exited before printing its address")
            .expect("read serve stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            let addr = rest
                .split_whitespace()
                .next()
                .expect("address token")
                .parse()
                .expect("parse bound address");
            return (guard, addr);
        }
    }
    drop(guard.child.take().map(|mut child| child.kill()));
    panic!("serve did not print its listening address");
}

#[test]
fn live_serve_append_query_shutdown_roundtrip() {
    let n = 3_000usize;
    let dir = std::env::temp_dir().join(format!("ius-live-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_str().expect("utf-8 temp dir");
    let (server, addr) = spawn_serve(&[
        "--live",
        "--build",
        "mwsa",
        "--corpus",
        "uniform",
        "--n",
        "3000",
        "--live-dir",
        dir_arg,
        "--flush-threshold",
        "500",
        "--port",
        "0",
        "--workers",
        "2",
    ]);
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.corpus_len, n as u64);
    assert!(stats.index_name.contains("LIVE"), "{}", stats.index_name);

    // Append 100 fresh rows (same uniform preset alphabet); they must be
    // visible to the very next query and counted in STATS.
    let batch = bench_corpus("uniform", 100, Some(7)).expect("preset").x;
    let snapshot = client.append(&batch).expect("append");
    assert_eq!(snapshot.corpus_len, (n + 100) as u64);
    assert_eq!(snapshot.changed, 100);
    let outcome = client.query(&[0u8; 64]).expect("query after append");
    let count = client.query_count(&[0u8; 64]).expect("count").0;
    assert_eq!(outcome.positions.len() as u64, count);

    // Delete, flush, compact — each answered with a live snapshot.
    let snapshot = client.delete_range(0, 50).expect("delete");
    assert_eq!(snapshot.tombstones, 1);
    let snapshot = client.flush().expect("flush");
    assert_eq!(snapshot.memtable_rows, 127, "overlap = 2*ell - 1");
    let snapshot = client.compact(true).expect("compact");
    assert_eq!(snapshot.segments, 1);
    let after = client.query(&[0u8; 64]).expect("query after compact");
    // The tombstone [0, 50) masks every window that touches it.
    assert!(after.positions.iter().all(|&p| p >= 50));

    // Live servers refuse RELOAD with a typed error.
    match client.reload(None) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Reload),
        other => panic!("RELOAD on a live server must be refused, got {other:?}"),
    }
    // Wrong-sigma appends are refused typed, and the server keeps serving.
    match client.append_rows(3, vec![0.5, 0.25, 0.25]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Live),
        other => panic!("wrong-sigma APPEND must be refused, got {other:?}"),
    }
    client.ping().expect("still serving after refusals");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.appended_positions, 100);
    assert_eq!(stats.delete_ranges, 1);
    assert_eq!(stats.flushes, 1);
    assert_eq!(stats.compactions, 1);
    // The wrong-sigma refusal above landed in the dedicated live counter,
    // not in query_errors.
    assert_eq!(stats.live_errors, 1);
    assert_eq!(stats.query_errors, 0);

    client.shutdown().expect("shutdown");
    server.wait_success();

    // Graceful shutdown saved the live state; a fresh process reopens it.
    assert!(dir.join("live.iusl").exists(), "manifest saved on shutdown");
    let (server, addr) = spawn_serve(&["--live", "--live-dir", dir_arg, "--port", "0"]);
    let mut client = Client::connect(addr).expect("reconnect");
    let stats = client.stats().expect("stats after reopen");
    assert_eq!(stats.corpus_len, (n + 100) as u64);
    let reopened = client.query(&[0u8; 64]).expect("query after reopen");
    assert_eq!(reopened.positions, after.positions);
    client.shutdown().expect("shutdown reopened server");
    server.wait_success();
    std::fs::remove_dir_all(&dir).ok();
}

/// The acked-durable invariant at the process level: a server serving
/// with `--fsync record` is SIGKILLed mid-stream, and every mutation it
/// acked over the wire must survive into the reopened state — first
/// checked by replaying the directory in-process, then by serving it
/// again and comparing query answers over the wire.
#[test]
fn sigkill_crash_preserves_acked_mutations() {
    use ius_live::{LiveConfig, LiveIndex};
    let n = 2_000usize;
    let dir = std::env::temp_dir().join(format!("ius-live-sigkill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create live dir");
    let dir_arg = dir.to_str().expect("utf-8 temp dir");
    let (server, addr) = spawn_serve(&[
        "--live",
        "--build",
        "mwsa",
        "--corpus",
        "uniform",
        "--n",
        "2000",
        "--live-dir",
        dir_arg,
        "--fsync",
        "record",
        // Keep every mutation out of the checkpoint: recovery must come
        // from the WAL alone.
        "--flush-threshold",
        "100000",
        "--port",
        "0",
        "--workers",
        "2",
    ]);
    let mut client = Client::connect(addr).expect("connect");

    // Three acked appends and one acked delete, all only in the WAL.
    let mut acked = n as u64;
    for seed in [11, 12, 13] {
        let batch = bench_corpus("uniform", 40, Some(seed)).expect("preset").x;
        let snapshot = client.append(&batch).expect("acked append");
        acked += 40;
        assert_eq!(snapshot.corpus_len, acked);
    }
    client.delete_range(10, 30).expect("acked delete");
    let before = client.query(&[0u8; 64]).expect("query before crash");
    let stats = client.stats().expect("stats before crash");
    assert_eq!(stats.fsync_policy, 1, "record policy on the wire");
    assert_eq!(stats.wal_records, 4);
    assert!(stats.wal_bytes > 0);
    assert_eq!(stats.recoveries, 0);
    assert_eq!(stats.last_error, "");

    // SIGKILL — no graceful save, no WAL rotation, no flush.
    drop(client);
    drop(server);

    // In-process reopen replays the log tail.
    let live = LiveIndex::open(&dir, LiveConfig::default()).expect("reopen crashed dir");
    assert_eq!(live.len() as u64, acked, "every acked append survived");
    let stats = live.live_stats();
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.recovered_records, 4);
    assert_eq!(stats.tombstones, 1, "the acked delete survived");
    drop(live);

    // A fresh server over the same directory answers as before the crash.
    let (server, addr) = spawn_serve(&[
        "--live",
        "--live-dir",
        dir_arg,
        "--fsync",
        "record",
        "--port",
        "0",
    ]);
    let mut client = Client::connect(addr).expect("reconnect");
    let stats = client.stats().expect("stats after crash");
    assert_eq!(stats.corpus_len, acked);
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.recovered_records, 4);
    let after = client.query(&[0u8; 64]).expect("query after crash");
    assert_eq!(after.positions, before.positions);
    client.shutdown().expect("shutdown recovered server");
    server.wait_success();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn static_servers_refuse_live_mutations_typed() {
    use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexVariant};
    use ius_server::{ServedIndex, Server, ServerConfig};
    use std::sync::Arc;
    let x = bench_corpus("uniform", 2_000, None).expect("preset").x;
    let params = IndexParams::new(8.0, 64, x.sigma()).unwrap();
    let index = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::Array), params)
        .build(&x)
        .unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        ServedIndex::single(index, Arc::new(x.clone())),
        None,
        &ServerConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for result in [
        client.append(&x.substring(0, 10).unwrap()).map(|_| ()),
        client.delete_range(0, 5).map(|_| ()),
        client.flush().map(|_| ()),
        client.compact(false).map(|_| ()),
    ] {
        match result {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::Live);
                assert!(message.contains("--live"), "{message}");
            }
            other => panic!("static server must refuse live ops typed, got {other:?}"),
        }
    }
    // The connection survives every refusal.
    client.ping().unwrap();
    server.shutdown();
}
