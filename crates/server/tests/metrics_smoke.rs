//! End-to-end observability smoke: serve a live preset corpus, drive
//! queries and mutations over the wire, scrape `METRICS`, and assert every
//! layer's instrumentation actually recorded — per-stage query histograms,
//! the queue-wait/service split, live flush/compaction durations and WAL
//! fsync latency — plus the histogram invariants (stage counts bounded by
//! the ops driven with at least one traced sample, quantiles monotone).
//! This is the CI smoke step of the metrics subsystem.

use ius_datasets::corpora::bench_corpus;
use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexVariant};
use ius_live::{FsyncPolicy, LiveConfig, LiveIndex};
use ius_server::{Client, MetricsSnapshot, ServedIndex, Server, ServerConfig};
use std::sync::Arc;

/// A live MWSA server seeded from the uniform preset; `flush_threshold`
/// 500 over `n = 3000` seeds six equal-class segments, so one tiered
/// compaction round deterministically has work to do.
fn live_server(dir: Option<&std::path::Path>, config: &ServerConfig) -> (Server, Arc<LiveIndex>) {
    let corpus = bench_corpus("uniform", 3_000, None).expect("preset");
    let params = IndexParams::new(corpus.z, corpus.ell, corpus.x.sigma()).expect("params");
    let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::Array), params);
    let live_config = LiveConfig {
        flush_threshold: 500,
        auto_compact: false, // compaction is driven explicitly, so counts are exact
        ..Default::default()
    };
    let live = LiveIndex::from_corpus(&corpus.x, spec, 2 * corpus.ell, live_config).expect("seed");
    if let Some(dir) = dir {
        live.enable_durability(dir, FsyncPolicy::Record)
            .expect("arm WAL");
    }
    let live = Arc::new(live);
    let server =
        Server::bind("127.0.0.1:0", ServedIndex::live(live.clone()), None, config).expect("bind");
    (server, live)
}

fn assert_monotone_quantiles(name: &str, h: &ius_obs::HistogramSnapshot) {
    assert!(
        h.p50() <= h.p99(),
        "{name}: p50 {} must not exceed p99 {}",
        h.p50(),
        h.p99()
    );
}

#[test]
fn metrics_scrape_covers_every_layer_under_load() {
    let dir = std::env::temp_dir().join(format!("ius-metrics-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create live dir");
    let (server, _live) = live_server(Some(&dir), &ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Drive the query path: 12 collect + 4 count ops, all recording the
    // four per-stage histograms.
    let pattern = vec![0u8; 64];
    for _ in 0..12 {
        client.query(&pattern).expect("query");
    }
    for _ in 0..4 {
        client.query_count(&pattern).expect("count");
    }
    // Drive the live path: an append big enough to freeze a segment on
    // flush, one explicit flush, one tiered compaction round. Every
    // mutation is WAL-logged with per-record fsync.
    let batch = bench_corpus("uniform", 600, Some(3)).expect("preset").x;
    client.append(&batch).expect("append");
    client.flush().expect("flush");
    client.compact(false).expect("tiered compaction round");

    let snapshot: MetricsSnapshot = client.metrics().expect("metrics scrape");

    // Query stages: tracing is sampled 1-in-STAGE_SAMPLE_EVERY per
    // thread with the first query on every thread always traced, so each
    // stage histogram carries at least one and at most 16 samples;
    // quantiles must be monotone.
    for (name, stage) in [
        ("query_scan", &snapshot.query_scan),
        ("query_locate", &snapshot.query_locate),
        ("query_verify", &snapshot.query_verify),
        ("query_report", &snapshot.query_report),
    ] {
        assert!(
            (1..=16).contains(&stage.count),
            "{name} must see sampled query ops, got {}",
            stage.count
        );
        assert_monotone_quantiles(name, stage);
    }
    // The scan stage does real work on every traced query; its total time
    // must be nonzero under load.
    assert!(
        snapshot.query_scan.sum > 0,
        "scan stage time must be nonzero"
    );

    // Server split: queue-wait recorded per admitted connection, service
    // time per op byte. Service records are sampled per connection at the
    // stage-tracing rate with the first request always recorded, and the
    // first request here is a QUERY (op 1).
    assert!(snapshot.queue_wait.count >= 1);
    assert_monotone_quantiles("queue_wait", &snapshot.queue_wait);
    let query_service = snapshot
        .op_service
        .iter()
        .find(|(op, _)| *op == 1)
        .expect("QUERY service histogram present");
    assert!(
        (1..=16).contains(&query_service.1.count),
        "sampled QUERY service count, got {}",
        query_service.1.count
    );
    assert!(query_service.1.sum > 0, "service time must be nonzero");

    // Live layer: the seeding auto-flushes plus the explicit flush all
    // recorded durations; the driven compaction round recorded one sample.
    assert!(snapshot.live.flush.count >= 2, "flush durations recorded");
    assert!(snapshot.live.flush.sum > 0);
    assert_eq!(snapshot.live.compaction.count, 1, "one driven round");
    assert!(snapshot.live.compaction.sum > 0);
    assert_eq!(snapshot.live.segments, 2, "6 seeds - merged run + flushed");
    assert_eq!(snapshot.live.compaction_errors, 0);
    assert_eq!(snapshot.live.last_error, "");

    // WAL: per-record fsync latencies under the append/delete load.
    assert!(
        snapshot.live.wal_fsync.count >= 1,
        "fsync latency must be recorded with --fsync record"
    );
    assert!(snapshot.live.wal_fsync.sum > 0);
    assert_monotone_quantiles("wal_fsync", &snapshot.live.wal_fsync);

    assert!(snapshot.uptime_ns > 0);
    // Under the default 50 ms threshold this tiny corpus logs no slow
    // queries — the log must stay empty rather than capture everything.
    assert_eq!(snapshot.slow_query_threshold_ns, 50_000_000);

    // The text rendering covers every section without panicking.
    let dump = snapshot.dump();
    for needle in ["query stages", "scan", "queue", "flush", "fsync"] {
        assert!(
            dump.contains(needle),
            "dump must mention {needle:?}:\n{dump}"
        );
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_replay_throughput_shows_in_metrics_after_reopen() {
    let dir = std::env::temp_dir().join(format!("ius-metrics-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create live dir");
    {
        let (server, _live) = live_server(Some(&dir), &ServerConfig::default());
        let mut client = Client::connect(server.local_addr()).expect("connect");
        // Three acked mutations that stay in the WAL (no flush afterwards).
        for seed in [21, 22, 23] {
            let batch = bench_corpus("uniform", 40, Some(seed)).expect("preset").x;
            client.append(&batch).expect("append");
        }
        // Simulated crash: drop the server without a graceful save.
        drop(client);
        drop(server);
    }
    // Reopen: the WAL tail replays, and the replay throughput metrics
    // surface through the served snapshot.
    let live = Arc::new(LiveIndex::open(&dir, LiveConfig::default()).expect("reopen"));
    let server = Server::bind(
        "127.0.0.1:0",
        ServedIndex::live(live.clone()),
        None,
        &ServerConfig::default(),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    let snapshot = client.metrics().expect("metrics");
    assert_eq!(
        snapshot.live.wal_replay_records, 3,
        "three WAL records scanned"
    );
    assert!(snapshot.live.wal_replay_bytes > 0);
    assert!(snapshot.live.wal_replay_ns > 0);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_failure_shows_on_next_scrape() {
    let dir = std::env::temp_dir().join(format!("ius-metrics-bgerr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create live dir");
    let (server, _live) = live_server(Some(&dir), &ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let pattern = vec![0u8; 64];
    client.query(&pattern).expect("query");
    let clean = client.metrics().expect("first scrape");
    assert_eq!(clean.live.last_error, "", "no background error yet");

    // Sabotage the checkpoint target: replace the live directory with a
    // plain file, so the next flush's checkpoint fails in the background.
    // The WAL file descriptor stays open, so mutations still ack.
    std::fs::remove_dir_all(&dir).expect("remove live dir");
    std::fs::write(&dir, b"not a directory").expect("block the dir path");

    let batch = bench_corpus("uniform", 600, Some(5)).expect("preset").x;
    client.append(&batch).expect("append still acks");
    client
        .flush()
        .expect("flush succeeds; only its checkpoint fails");

    // The failure surfaces on the very next scrape — no query ever failed.
    let snapshot = client.metrics().expect("second scrape");
    assert!(
        snapshot.live.last_error.contains("checkpoint failed"),
        "background failure must surface through METRICS, got {:?}",
        snapshot.live.last_error
    );
    client
        .query(&pattern)
        .expect("queries unaffected by the failure");
    server.shutdown();
    std::fs::remove_file(&dir).ok();
}
