//! Live-server wire-protocol tests: every malformed or hostile byte
//! sequence must be answered with a typed error frame (or a clean close) —
//! the server must never panic on untrusted input — and well-formed
//! traffic must round-trip exactly.

use ius_datasets::uniform::UniformConfig;
use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexVariant, UncertainIndex};
use ius_server::protocol::{self, read_frame};
use ius_server::{
    Client, ClientError, ErrorCode, Request, Response, ResultMode, ServedIndex, Server,
    ServerConfig, MAX_RESPONSE_FRAME, WIRE_MAGIC, WIRE_VERSION,
};
use ius_weighted::WeightedString;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn test_corpus() -> WeightedString {
    UniformConfig {
        n: 400,
        sigma: 2,
        spread: 0.4,
        seed: 11,
    }
    .generate()
}

/// A small MWSA server over a binary corpus (`ℓ = 8`).
fn start_server(config: &ServerConfig) -> (Server, WeightedString, ius_index::AnyIndex) {
    let x = test_corpus();
    let params = IndexParams::new(4.0, 8, x.sigma()).expect("params");
    let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::Array), params);
    let index = spec.build(&x).expect("build");
    let served = ServedIndex::single(index.clone(), Arc::new(x.clone()));
    let server = Server::bind("127.0.0.1:0", served, None, config).expect("bind");
    (server, x, index)
}

/// Sends raw bytes and reads one response frame.
fn raw_round_trip(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<(u64, Response)> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("send");
    let mut buf = Vec::new();
    match read_frame(&mut stream, MAX_RESPONSE_FRAME, &mut buf) {
        Ok(true) => Some(protocol::decode_response(&buf).expect("decode response")),
        Ok(false) => None,
        Err(e) => panic!("transport error instead of a typed response: {e}"),
    }
}

#[test]
fn well_formed_traffic_round_trips_and_matches_the_engine() {
    let (server, x, index) = start_server(&ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");

    // Compare every result mode against the in-process engine.
    let pattern = vec![0u8; 8];
    let expected = index.query(&pattern, &x).expect("in-process query");
    let outcome = client.query(&pattern).expect("collect");
    assert_eq!(outcome.positions, expected);
    assert_eq!(outcome.stats.reported, expected.len());
    let (count, stats) = client.query_count(&pattern).expect("count");
    assert_eq!(count as usize, expected.len());
    assert_eq!(stats.reported, expected.len());
    let k = 2u64;
    let first = client.query_first_k(&pattern, k).expect("first-k");
    assert_eq!(
        first.positions,
        expected[..expected.len().min(k as usize)].to_vec()
    );

    // Engine-level refusals come back as typed QUERY errors.
    let err = client.query(&[0u8; 3]).expect_err("short pattern");
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::Query);
            assert!(
                message.contains("shorter"),
                "unexpected message {message:?}"
            );
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }

    // The connection is still usable after a query error.
    client.ping().expect("ping after error");
    let snapshot = client.stats().expect("stats");
    assert_eq!(snapshot.index_name, "MWSA");
    assert_eq!(snapshot.corpus_len, 400);
    assert_eq!(snapshot.generation, 0);
    assert!(snapshot.queries >= 3);
    assert_eq!(snapshot.query_errors, 1);
    server.shutdown();
}

#[test]
fn bad_magic_gets_a_typed_error_and_a_close() {
    let (server, _, _) = start_server(&ServerConfig::default());
    let mut frame = Vec::new();
    protocol::encode_request(5, &Request::Ping, &mut frame);
    frame[4] = b'Z'; // corrupt the magic
    let (id, response) = raw_round_trip(server.local_addr(), &frame).expect("typed answer");
    assert_eq!(id, 0, "header-level errors cannot echo an id");
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::Malformed,
            ..
        }
    ));
    server.shutdown();
}

#[test]
fn unknown_version_gets_a_typed_error() {
    let (server, _, _) = start_server(&ServerConfig::default());
    let mut frame = Vec::new();
    protocol::encode_request(5, &Request::Ping, &mut frame);
    frame[8] = WIRE_VERSION as u8 + 1; // bump the version low byte
    let (_, response) = raw_round_trip(server.local_addr(), &frame).expect("typed answer");
    match response {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::UnsupportedVersion);
            assert!(message.contains("version"));
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unknown_op_keeps_the_connection_alive() {
    let (server, _, _) = start_server(&ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Hand-build a frame with op 99: header only.
    let mut frame = Vec::new();
    protocol::encode_request(77, &Request::Ping, &mut frame);
    frame[18] = 99;
    stream.write_all(&frame).expect("send");
    let mut buf = Vec::new();
    assert!(read_frame(&mut stream, MAX_RESPONSE_FRAME, &mut buf).expect("read"));
    let (id, response) = protocol::decode_response(&buf).expect("decode");
    assert_eq!(id, 77, "body-level errors echo the request id");
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::UnknownOp,
            ..
        }
    ));
    // Framing stayed intact: a well-formed request on the same connection
    // still answers.
    let mut frame = Vec::new();
    protocol::encode_request(78, &Request::Ping, &mut frame);
    stream.write_all(&frame).expect("send");
    assert!(read_frame(&mut stream, MAX_RESPONSE_FRAME, &mut buf).expect("read"));
    let (id, response) = protocol::decode_response(&buf).expect("decode");
    assert_eq!(id, 78);
    assert_eq!(response, Response::Pong);
    server.shutdown();
}

#[test]
fn truncated_body_gets_a_typed_error_with_the_request_id() {
    let (server, _, _) = start_server(&ServerConfig::default());
    // A QUERY frame whose pattern length field announces more bytes than
    // the frame carries.
    let mut frame = Vec::new();
    protocol::encode_request(
        13,
        &Request::Query {
            mode: ResultMode::Collect,
            pattern: vec![1, 2, 3, 4],
        },
        &mut frame,
    );
    // Shrink the frame by two bytes but leave the announced pattern length:
    // the body decoder must hit Truncated.
    frame.truncate(frame.len() - 2);
    let new_len = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&new_len.to_le_bytes());
    let (id, response) = raw_round_trip(server.local_addr(), &frame).expect("typed answer");
    assert_eq!(id, 13);
    match response {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Malformed);
            assert!(message.contains("truncated"), "{message:?}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn oversized_length_prefix_gets_a_typed_error_then_a_close() {
    let (server, _, _) = start_server(&ServerConfig::default());
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&WIRE_MAGIC);
    let (id, response) = raw_round_trip(server.local_addr(), &bytes).expect("typed answer");
    assert_eq!(id, 0);
    match response {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Malformed);
            assert!(message.contains("exceeds"), "{message:?}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn random_garbage_never_panics_the_server() {
    let (server, x, index) = start_server(&ServerConfig::default());
    // A deterministic xorshift spray of garbage blobs.
    let mut state = 0x1234_5678_9ABC_DEFFu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..32 {
        let len = (next() % 64) as usize + 1;
        let mut blob = Vec::with_capacity(len);
        for _ in 0..len {
            blob.push(next() as u8);
        }
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(200)))
            .expect("timeout");
        stream.write_all(&blob).expect("send");
        // Whatever happens — typed error frame, clean close, or the server
        // waiting for a frame the blob's bogus length prefix announced (our
        // drop below resolves that as EOF) — the server must stay up; a
        // panic would fail the final query below.
        let mut buf = Vec::new();
        let _ = read_frame(&mut stream, MAX_RESPONSE_FRAME, &mut buf);
        drop(stream);
        let _ = round;
    }
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ping().expect("server survived the garbage spray");
    let pattern = vec![1u8; 8];
    assert_eq!(
        client.query(&pattern).expect("query").positions,
        index.query(&pattern, &x).expect("in-process")
    );
    server.shutdown();
}

#[test]
fn full_admission_queue_refuses_with_overloaded() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..Default::default()
    };
    let (server, _, _) = start_server(&config);
    // Connection 1 is being served (the single worker pops it), connection
    // 2 fills the queue, connection 3 must be refused.
    let mut busy = Client::connect(server.local_addr()).expect("connect 1");
    busy.ping().expect("ping 1"); // ensures the worker owns this connection
    let _queued = TcpStream::connect(server.local_addr()).expect("connect 2");
    // Give the acceptor a moment to enqueue connection 2.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut refused = Client::connect(server.local_addr()).expect("connect 3");
    match refused.ping() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected an OVERLOADED refusal, got {other:?}"),
    }
    let snapshot = busy.stats().expect("stats");
    assert_eq!(snapshot.overloaded, 1);
    assert_eq!(snapshot.queue_depth, 1);
    server.shutdown();
}

#[test]
fn client_shutdown_stops_the_server_gracefully() {
    let (server, _, _) = start_server(&ServerConfig {
        workers: 2,
        ..Default::default()
    });
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    client.shutdown().expect("shutdown handshake");
    // join() returns once the acceptor and workers exited.
    server.join();
    // New connections are refused outright.
    assert!(
        Client::connect(addr).is_err() || {
            let mut late = Client::connect(addr).unwrap();
            late.ping().is_err()
        },
        "the port must be closed (or refuse work) after shutdown"
    );
}

#[test]
fn metrics_scrape_reflects_served_queries() {
    // Threshold zero: every query lands in the slow-query log, so the log
    // path is exercised deterministically.
    let config = ServerConfig {
        slow_query_threshold: std::time::Duration::ZERO,
        ..Default::default()
    };
    let (server, _, _) = start_server(&config);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let pattern = vec![0u8; 8];
    for _ in 0..5 {
        client.query(&pattern).expect("query");
    }
    client.query_count(&pattern).expect("count");

    let snapshot = client.metrics().expect("metrics");
    // Stage tracing is sampled (1 in STAGE_SAMPLE_EVERY per thread), but
    // the first query a worker serves always draws a ticket, so every
    // stage histogram has between 1 and 6 samples here.
    for (name, stage) in [
        ("scan", &snapshot.query_scan),
        ("locate", &snapshot.query_locate),
        ("verify", &snapshot.query_verify),
        ("report", &snapshot.query_report),
    ] {
        assert!(
            (1..=6).contains(&stage.count),
            "stage {name} must see sampled queries, got {}",
            stage.count
        );
    }
    // One admitted connection recorded one queue-wait sample.
    assert!(
        snapshot.queue_wait.count >= 1,
        "queue-wait must be recorded"
    );
    // Service time is recorded per op byte, sampled per connection at the
    // stage-tracing rate with the first request always recorded: QUERY (1)
    // must be present with 1..=6 samples, METRICS (9) not yet (the
    // in-flight scrape is recorded only after its response is sent).
    let query_service = snapshot
        .op_service
        .iter()
        .find(|(op, _)| *op == 1)
        .expect("QUERY service histogram");
    assert!(
        (1..=6).contains(&query_service.1.count),
        "sampled QUERY service count, got {}",
        query_service.1.count
    );
    // Histogram invariant on a real scrape: quantiles are monotone.
    assert!(snapshot.query_scan.p50() <= snapshot.query_scan.p99());
    // The zero threshold put every query into the slow-query log.
    assert_eq!(snapshot.slow_query_threshold_ns, 0);
    assert!(
        snapshot.slow_queries.len() >= 6,
        "all queries must be logged as slow at threshold 0, got {}",
        snapshot.slow_queries.len()
    );
    assert!(snapshot
        .slow_queries
        .iter()
        .all(|entry| entry.pattern_len == 8));
    // Every slow entry retains the pattern prefix (the full 8-rank pattern
    // here, since it is shorter than the 16-byte cap).
    assert!(snapshot
        .slow_queries
        .iter()
        .all(|entry| entry.prefix() == &pattern[..]));
    // The ring-occupancy gauges reflect the same entries, and advertise
    // non-trivial capacities.
    assert_eq!(snapshot.rings.slow, snapshot.slow_queries.len() as u64);
    assert!(snapshot.rings.slow_capacity >= snapshot.rings.slow);
    assert!(snapshot.rings.flight_recent_capacity > 0);
    assert!(snapshot.rings.flight_pinned_capacity > 0);
    server.shutdown();
}

#[test]
fn metrics_request_with_trailing_bytes_is_refused_typed() {
    let (server, _, _) = start_server(&ServerConfig::default());
    let mut frame = Vec::new();
    protocol::encode_request(21, &Request::Metrics, &mut frame);
    // A METRICS request has an empty body: a trailing byte must be refused
    // typed, echoing the request id, not by hanging up.
    frame.push(0xAB);
    let new_len = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&new_len.to_le_bytes());
    let (id, response) = raw_round_trip(server.local_addr(), &frame).expect("typed answer");
    assert_eq!(id, 21);
    match response {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Malformed);
            assert!(message.contains("trailing"), "{message:?}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unassigned_op_after_metrics_keeps_the_connection_alive() {
    // METRICS was added without a wire-version bump: a server that does not
    // know an op must answer UNKNOWN_OP and keep serving — this is the
    // contract that lets old servers tolerate new clients. Verify the
    // server upholds it for the next unassigned op and still answers a
    // METRICS scrape on the very same connection.
    let (server, _, _) = start_server(&ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut frame = Vec::new();
    protocol::encode_request(30, &Request::Metrics, &mut frame);
    frame[18] = 11; // the first op byte this build does not assign
    stream.write_all(&frame).expect("send");
    let mut buf = Vec::new();
    assert!(read_frame(&mut stream, MAX_RESPONSE_FRAME, &mut buf).expect("read"));
    let (id, response) = protocol::decode_response(&buf).expect("decode");
    assert_eq!(id, 30);
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::UnknownOp,
            ..
        }
    ));
    let mut frame = Vec::new();
    protocol::encode_request(31, &Request::Metrics, &mut frame);
    stream.write_all(&frame).expect("send");
    assert!(read_frame(&mut stream, MAX_RESPONSE_FRAME, &mut buf).expect("read"));
    let (id, response) = protocol::decode_response(&buf).expect("decode");
    assert_eq!(id, 31);
    assert!(
        matches!(response, Response::Metrics(_)),
        "a real METRICS scrape must still answer on the same connection"
    );
    server.shutdown();
}

#[test]
fn idle_connections_are_closed_after_the_idle_timeout() {
    let config = ServerConfig {
        workers: 1,
        idle_timeout: std::time::Duration::from_millis(150),
        poll_interval: std::time::Duration::from_millis(10),
        ..Default::default()
    };
    let (server, _, _) = start_server(&config);
    let mut idle = Client::connect(server.local_addr()).expect("connect");
    idle.ping().expect("ping while fresh");
    // Sit silent past the idle timeout: the server must close the
    // connection and free the worker for the next client.
    std::thread::sleep(std::time::Duration::from_millis(400));
    assert!(
        idle.ping().is_err(),
        "the idle connection must have been closed"
    );
    // The freed worker serves a new connection normally.
    let mut fresh = Client::connect(server.local_addr()).expect("connect");
    fresh.ping().expect("ping on a fresh connection");
    server.shutdown();
}

#[test]
fn trace_dump_round_trips_over_the_wire() {
    let (server, _, _) = start_server(&ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // The first request on a connection always draws a trace ticket, and
    // the flight push happens before the worker reads this connection's
    // next frame — so a same-connection TRACE_DUMP must see the query.
    let pattern = vec![0u8; 8];
    client.query(&pattern).expect("query");
    let records = client.trace_dump().expect("trace dump");
    let query_trace = records
        .iter()
        .find(|r| r.op == 1 && !r.pinned)
        .expect("the sampled QUERY must be in the recent ring");
    assert_eq!(query_trace.error, ius_server::TRACE_NO_ERROR);
    assert!(query_trace.total_ns > 0);
    let codes: Vec<u16> = query_trace.spans.iter().map(|s| s.code).collect();
    for stage in [
        ius_obs::trace::STAGE_QUEUE_WAIT,
        ius_obs::trace::STAGE_FRAME_DECODE,
        ius_obs::trace::STAGE_QUERY,
        ius_obs::trace::STAGE_RESPONSE_ENCODE,
        ius_obs::trace::STAGE_RESPONSE_WRITE,
    ] {
        assert!(
            codes.contains(&stage),
            "stage {} missing from {codes:?}",
            ius_obs::trace::stage_name(stage)
        );
    }
    // The query span nests the single-machine stage leaves one level down.
    let query_span = query_trace
        .spans
        .iter()
        .find(|s| s.code == ius_obs::trace::STAGE_QUERY)
        .expect("query span");
    let verify = query_trace
        .spans
        .iter()
        .find(|s| s.code == ius_obs::trace::STAGE_VERIFY)
        .expect("verify leaf");
    assert_eq!(verify.depth, query_span.depth + 1);
    // The dump renders as an indented tree naming every stage.
    let text = query_trace.render();
    assert!(
        text.contains("queue_wait") && text.contains("response_write"),
        "{text}"
    );
    server.shutdown();
}

#[test]
fn error_traces_are_pinned_and_drained_over_the_wire() {
    let (server, _, _) = start_server(&ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // First request on the connection (always sampled): an engine-level
    // refusal — pattern shorter than ℓ — answered as a typed QUERY error.
    let err = client.query(&[0u8; 3]).expect_err("short pattern");
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::Query,
            ..
        }
    ));
    let records = client.trace_dump().expect("trace dump");
    let pinned = records
        .iter()
        .find(|r| r.pinned)
        .expect("the error trace must be pinned");
    assert_eq!(pinned.op, 1, "the failing op was QUERY");
    assert_eq!(pinned.error, 3, "the QUERY_ERROR code byte is recorded");
    assert!(pinned
        .spans
        .iter()
        .any(|s| s.code == ius_obs::trace::STAGE_QUERY));
    server.shutdown();
}

#[test]
fn trace_dump_request_with_trailing_bytes_is_refused_typed() {
    let (server, _, _) = start_server(&ServerConfig::default());
    let mut frame = Vec::new();
    protocol::encode_request(23, &Request::TraceDump, &mut frame);
    // A TRACE_DUMP request has an empty body: a trailing byte must be
    // refused typed, echoing the request id, not by hanging up.
    frame.push(0xCD);
    let new_len = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&new_len.to_le_bytes());
    let (id, response) = raw_round_trip(server.local_addr(), &frame).expect("response");
    assert_eq!(id, 23);
    match response {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Malformed);
            assert!(message.contains("trailing"), "{message:?}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    server.shutdown();
}
