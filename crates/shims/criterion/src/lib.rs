//! Offline stand-in for the parts of the `criterion` API used by the
//! workspace's benches: `Criterion`, benchmark groups, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistical machinery is replaced by a simple timed loop: each benchmark
//! is warmed up once, then run for `sample_size` samples of adaptively chosen
//! iteration counts within the group's measurement time, and the median
//! per-iteration time is printed. Good enough for relative comparisons in an
//! offline container; swap in the real crate for publication-grade numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter display.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into(), &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up & calibration: one iteration tells us how many fit a sample.
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!(
            "  {:<56} {:>12.3} µs/iter  ({} samples × {} iters)",
            id.id,
            median * 1e6,
            self.sample_size,
            iters
        );
    }
}

/// Passed to benchmark closures; its [`Bencher::iter`] runs the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
