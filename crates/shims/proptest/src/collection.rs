//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
