//! Offline stand-in for the parts of the `proptest` API used by this
//! workspace: the [`proptest!`] macro, range and tuple strategies,
//! `prop::collection::vec`, [`Strategy::prop_map`], [`ProptestConfig`] and the
//! `prop_assert*` macros.
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! with the values that produced it (cases are deterministic per test name,
//! so a failure reproduces by re-running the test). Generation quality and
//! the testing model (N random cases per property) are preserved, which is
//! what the workspace's property tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Per-property configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Error type produced by `prop_assert*` (a message describing the failure).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives the cases of one property; created by the [`proptest!`] expansion.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner whose RNG is seeded from the test's (stable) name.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the fully qualified test name: deterministic across
        // runs, different per property.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            config,
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The runner's RNG, used by strategies to draw one case.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..runner.cases() {
                    $(let $arg = $crate::Strategy::generate(&$strat, runner.rng());)*
                    let inputs = [
                        $(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),*
                    ].join(", ");
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            runner.cases(),
                            e,
                            inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "both sides equal {:?}", l);
    }};
}
