//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

/// A fixed value (the `Just` strategy).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
