//! Self-checks of the proptest stand-in: bodies run, failures fail.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static RUNS: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(17))]

    // Deliberately not #[test]: invoked (once) by `case_count_honoured` so
    // the counter is not racy.
    #[allow(unused)]
    fn bodies_run_once_per_case(x in 0u32..100, v in prop::collection::vec(0u8..4, 1..9)) {
        RUNS.fetch_add(1, Ordering::Relaxed);
        prop_assert!(x < 100);
        prop_assert!((1..9).contains(&v.len()));
        prop_assert!(v.iter().all(|&b| b < 4));
    }
}

#[test]
fn case_count_honoured() {
    bodies_run_once_per_case();
    assert_eq!(RUNS.load(Ordering::Relaxed), 17);
}

#[test]
fn failing_property_panics() {
    let result = std::panic::catch_unwind(|| {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert_eq!(x, 99u32, "x can never be 99");
            }
        }
        always_fails();
    });
    assert!(result.is_err(), "a failing property must panic");
}
