//! Offline stand-in for the parts of the `rand` 0.8 API used by this
//! workspace: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer/float ranges and [`Rng::gen_bool`].
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors the small API surface it needs instead of the real
//! crate. The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well distributed and fully deterministic per seed. The *sequences differ*
//! from the real `rand::rngs::StdRng` (which is ChaCha12); every use in this
//! workspace treats seeded randomness as "arbitrary but reproducible", never
//! as a fixed golden sequence, so this is safe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive; integers or
    /// floats).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly. Mirrors `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, bound)` via Lemire's multiply-shift with
/// rejection.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator of the real `rand` crate — see the crate
    /// docs for why that is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let sa: Vec<u32> = (0..64).map(|_| a.gen_range(0..1_000_000u32)).collect();
        let sb: Vec<u32> = (0..64).map(|_| b.gen_range(0..1_000_000u32)).collect();
        let sc: Vec<u32> = (0..64).map(|_| c.gen_range(0..1_000_000u32)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u8);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(5..=5usize);
            assert_eq!(v, 5);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-4..=4i32);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.05)).count();
        assert!(
            (4_300..5_700).contains(&hits),
            "p=0.05 produced {hits}/100000"
        );
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniformity_chi_square_is_sane() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 16];
        let n = 160_000;
        for _ in 0..n {
            counts[rng.gen_range(0..16usize)] += 1;
        }
        let expected = (n / 16) as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| (c as f64 - expected).powi(2) / expected)
            .sum();
        // 15 degrees of freedom: chi2 beyond 45 would be a 4-sigma-ish outlier.
        assert!(chi2 < 45.0, "chi2 = {chi2}");
    }
}
