//! Longest-common-extension index: suffix array + LCP + RMQ.
//!
//! Supports `O(1)`-ish LCE queries between arbitrary suffixes of a text and
//! lexicographic comparison of arbitrary fragments — the workhorse of the
//! property suffix array construction (sorting truncated suffixes) and of the
//! heavy-string LCP computations used when reversing the minimizer extended
//! solid factor tree (Theorem 12 of the paper).

use crate::lcp::lcp_array;
use crate::rmq::Rmq;
use crate::sa::{inverse_suffix_array, suffix_array};
use std::cmp::Ordering;

/// Longest-common-extension index over one text.
#[derive(Debug, Clone)]
pub struct LceIndex {
    text_len: usize,
    sa: Vec<u32>,
    rank: Vec<u32>,
    rmq: Rmq,
}

impl LceIndex {
    /// Builds the index (suffix array, LCP array and RMQ) over `text`.
    pub fn new(text: &[u8]) -> Self {
        Self::from_suffix_array(text, suffix_array(text))
    }

    /// Builds the index from a pre-computed suffix array of `text` (useful
    /// when the caller already has one, and for benchmarking alternative
    /// suffix-array constructions through the same downstream structures).
    ///
    /// # Panics
    ///
    /// Panics (possibly later, on use) if `sa` is not the suffix array of
    /// `text`.
    pub fn from_suffix_array(text: &[u8], sa: Vec<u32>) -> Self {
        debug_assert_eq!(sa.len(), text.len());
        let rank = inverse_suffix_array(&sa);
        let lcp = lcp_array(text, &sa);
        let rmq = Rmq::new(lcp);
        Self {
            text_len: text.len(),
            sa,
            rank,
            rmq,
        }
    }

    /// Length of the indexed text.
    #[inline]
    pub fn len(&self) -> usize {
        self.text_len
    }

    /// `true` iff the indexed text is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.text_len == 0
    }

    /// The suffix array of the indexed text.
    #[inline]
    pub fn sa(&self) -> &[u32] {
        &self.sa
    }

    /// The rank (inverse suffix array) of the indexed text.
    #[inline]
    pub fn rank(&self) -> &[u32] {
        &self.rank
    }

    /// Length of the longest common prefix of the suffixes starting at `i`
    /// and `j`.
    pub fn lce(&self, i: usize, j: usize) -> usize {
        if i == j {
            return self.text_len - i;
        }
        if i >= self.text_len || j >= self.text_len {
            return 0;
        }
        let (mut a, mut b) = (self.rank[i] as usize, self.rank[j] as usize);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        self.rmq.min(a + 1, b + 1) as usize
    }

    /// Lexicographically compares the fragments `[i, i+len_i)` and
    /// `[j, j+len_j)` of the text (clamped to the text end), treating a
    /// proper prefix as smaller.
    pub fn compare_fragments(&self, i: usize, len_i: usize, j: usize, len_j: usize) -> Ordering {
        let len_i = len_i.min(self.text_len.saturating_sub(i));
        let len_j = len_j.min(self.text_len.saturating_sub(j));
        let common = self.lce(i, j).min(len_i).min(len_j);
        if common == len_i || common == len_j {
            return len_i.cmp(&len_j);
        }
        // The suffixes differ at offset `common` (< both lengths); their
        // suffix-array ranks give the order.
        self.rank[i + common].cmp(&self.rank[j + common])
    }

    /// Approximate heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.sa.capacity() * 4 + self.rank.capacity() * 4 + self.rmq.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcp::lcp_of;

    #[test]
    fn lce_matches_direct() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let text: Vec<u8> = (0..400).map(|_| rng.gen_range(0..3u8)).collect();
        let lce = LceIndex::new(&text);
        for _ in 0..3000 {
            let i = rng.gen_range(0..text.len());
            let j = rng.gen_range(0..text.len());
            assert_eq!(lce.lce(i, j), lcp_of(&text[i..], &text[j..]), "i={i} j={j}");
        }
        assert_eq!(lce.lce(5, 5), text.len() - 5);
        assert_eq!(lce.lce(0, text.len()), 0);
    }

    #[test]
    fn compare_fragments_matches_slice_cmp() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let text: Vec<u8> = (0..200).map(|_| rng.gen_range(0..2u8)).collect();
        let lce = LceIndex::new(&text);
        for _ in 0..5000 {
            let i = rng.gen_range(0..text.len());
            let j = rng.gen_range(0..text.len());
            let li = rng.gen_range(0..40usize);
            let lj = rng.gen_range(0..40usize);
            let a = &text[i..(i + li).min(text.len())];
            let b = &text[j..(j + lj).min(text.len())];
            assert_eq!(
                lce.compare_fragments(i, li, j, lj),
                a.cmp(b),
                "i={i} li={li} j={j} lj={lj}"
            );
        }
    }

    #[test]
    fn empty_text() {
        let lce = LceIndex::new(b"");
        assert!(lce.is_empty());
        assert_eq!(lce.lce(0, 0), 0);
    }

    #[test]
    fn repetitive_text_lce() {
        let text = vec![1u8; 100];
        let lce = LceIndex::new(&text);
        assert_eq!(lce.lce(0, 50), 50);
        assert_eq!(lce.lce(10, 90), 10);
        assert_eq!(lce.compare_fragments(0, 10, 50, 10), Ordering::Equal);
        assert_eq!(lce.compare_fragments(0, 9, 50, 10), Ordering::Less);
    }
}
