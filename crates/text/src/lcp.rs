//! Longest-common-prefix arrays (Kasai's algorithm).

/// Computes the LCP array of `text` given its suffix array: `lcp[r]` is the
/// length of the longest common prefix of the suffixes `sa[r-1]` and `sa[r]`
/// (`lcp[0] = 0`).
///
/// Kasai's algorithm, `O(n)` time.
pub fn lcp_array(text: &[u8], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    assert_eq!(sa.len(), n, "suffix array length mismatch");
    let mut lcp = vec![0u32; n];
    if n == 0 {
        return lcp;
    }
    let mut rank = vec![0u32; n];
    for (r, &s) in sa.iter().enumerate() {
        rank[s as usize] = r as u32;
    }
    let mut h = 0usize;
    for i in 0..n {
        let r = rank[i] as usize;
        if r == 0 {
            h = 0;
            continue;
        }
        let j = sa[r - 1] as usize;
        while i + h < n && j + h < n && text[i + h] == text[j + h] {
            h += 1;
        }
        lcp[r] = h as u32;
        h = h.saturating_sub(1);
    }
    lcp
}

/// Longest common prefix of two byte slices, by direct comparison (used in
/// tests and as a fallback).
pub fn lcp_of(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::suffix_array;

    #[test]
    fn banana_lcp() {
        let text = b"banana";
        let sa = suffix_array(text);
        let lcp = lcp_array(text, &sa);
        // SA: a, ana, anana, banana, na, nana → LCP: 0, 1, 3, 0, 0, 2.
        assert_eq!(lcp, vec![0, 1, 3, 0, 0, 2]);
    }

    #[test]
    fn empty_text() {
        assert!(lcp_array(b"", &[]).is_empty());
    }

    #[test]
    fn matches_direct_comparison() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for len in [1usize, 2, 10, 100, 400] {
            let text: Vec<u8> = (0..len).map(|_| rng.gen_range(0..3u8)).collect();
            let sa = suffix_array(&text);
            let lcp = lcp_array(&text, &sa);
            for r in 1..len {
                let a = sa[r - 1] as usize;
                let b = sa[r] as usize;
                assert_eq!(lcp[r] as usize, lcp_of(&text[a..], &text[b..]), "r={r}");
            }
        }
    }

    #[test]
    fn lcp_of_basics() {
        assert_eq!(lcp_of(b"abcd", b"abxd"), 2);
        assert_eq!(lcp_of(b"", b"abc"), 0);
        assert_eq!(lcp_of(b"abc", b"abc"), 3);
        assert_eq!(lcp_of(b"abc", b"abcd"), 3);
    }
}
