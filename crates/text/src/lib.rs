//! # ius-text — classic text-indexing substrates
//!
//! Standard-string indexing machinery built from scratch for the uncertain
//! string indexes:
//!
//! * [`sa`] — linear-time suffix array construction (SA-IS), plus the
//!   retained prefix-doubling builder and a naive reference implementation
//!   for differential testing;
//! * [`lcp`] — longest-common-prefix arrays (Kasai's algorithm);
//! * [`rmq`] — range-minimum queries (block-decomposed sparse table);
//! * [`lce`] — longest-common-extension index combining the three above;
//! * [`search`] — pattern search over suffix arrays (binary search /
//!   `equal_range`);
//! * [`trie`] — compacted tries over implicitly labelled sorted string sets,
//!   the shared backbone of the weighted suffix trees and the minimizer solid
//!   factor trees (their edge labels are *not* stored verbatim; a
//!   [`trie::LabelProvider`] reconstructs them on demand, which is what makes
//!   the `O(log z)` heavy-string edge encoding possible);
//! * [`suffix_tree`] — a suffix tree for one standard string, assembled from
//!   the suffix array + LCP array (used by examples, tests and the classic
//!   baselines).
//!
//! All positions are 0-based; texts are slices of letter ranks (`u8`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lce;
pub mod lcp;
pub mod rmq;
pub mod sa;
pub mod search;
pub mod suffix_tree;
pub mod trie;

pub use lce::LceIndex;
pub use lcp::lcp_array;
pub use rmq::Rmq;
pub use sa::{inverse_suffix_array, suffix_array, suffix_array_prefix_doubling};
pub use search::SuffixArraySearcher;
pub use suffix_tree::SuffixTree;
pub use trie::{CompactedTrie, LabelProvider, SliceLabels, TrieParts};
