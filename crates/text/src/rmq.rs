//! Range-minimum queries.
//!
//! Block-decomposed sparse table: the input is split into blocks of 32
//! entries; block minima are indexed by a standard sparse table
//! (`O((n/32)·log(n/32))` words), and in-block queries scan at most 64
//! entries. Queries run in `O(1)`-ish time with ~1/8 of the memory of a plain
//! sparse table — important because the LCE structures of the weighted
//! indexes are built over texts of length `n·z`.

/// Block size of the decomposition.
const BLOCK: usize = 32;

/// A range-minimum-query structure over a `u32` array (by value).
#[derive(Debug, Clone)]
pub struct Rmq {
    values: Vec<u32>,
    /// Sparse table over block minima: `table[level][block]`.
    table: Vec<Vec<u32>>,
}

impl Rmq {
    /// Builds the structure over `values` (the values are copied).
    pub fn new(values: Vec<u32>) -> Self {
        let nblocks = values.len().div_ceil(BLOCK);
        let mut level0 = Vec::with_capacity(nblocks);
        for b in 0..nblocks {
            let start = b * BLOCK;
            let end = (start + BLOCK).min(values.len());
            level0.push(values[start..end].iter().copied().min().unwrap_or(u32::MAX));
        }
        let mut table = vec![level0];
        let mut width = 1usize;
        while width * 2 <= nblocks {
            let prev = table.last().expect("at least one level");
            let mut next = Vec::with_capacity(nblocks - width * 2 + 1);
            for b in 0..=nblocks - width * 2 {
                next.push(prev[b].min(prev[b + width]));
            }
            table.push(next);
            width *= 2;
        }
        Self { values, table }
    }

    /// Number of stored values.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff the structure is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Minimum over the half-open range `[from, to)`.
    ///
    /// Returns `u32::MAX` when the range is empty.
    ///
    /// # Panics
    ///
    /// Panics if `to > len()`.
    pub fn min(&self, from: usize, to: usize) -> u32 {
        assert!(to <= self.values.len(), "range end out of bounds");
        if from >= to {
            return u32::MAX;
        }
        let first_block = from / BLOCK;
        let last_block = (to - 1) / BLOCK;
        if first_block == last_block {
            return self.values[from..to]
                .iter()
                .copied()
                .min()
                .expect("non-empty");
        }
        let left_end = (first_block + 1) * BLOCK;
        let right_start = last_block * BLOCK;
        let mut best = self.values[from..left_end]
            .iter()
            .copied()
            .min()
            .expect("non-empty");
        best = best.min(
            self.values[right_start..to]
                .iter()
                .copied()
                .min()
                .expect("non-empty"),
        );
        // Full blocks strictly between.
        let lo = first_block + 1;
        let hi = last_block; // exclusive
        if lo < hi {
            let span = hi - lo;
            let level = usize::BITS as usize - 1 - span.leading_zeros() as usize;
            let width = 1usize << level;
            best = best.min(self.table[level][lo]);
            best = best.min(self.table[level][hi - width]);
        }
        best
    }

    /// Approximate heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        let table: usize = self.table.iter().map(|l| l.capacity() * 4).sum();
        self.values.capacity() * 4 + table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(values: &[u32], from: usize, to: usize) -> u32 {
        values[from..to].iter().copied().min().unwrap_or(u32::MAX)
    }

    #[test]
    fn small_exhaustive() {
        let values: Vec<u32> = vec![5, 2, 8, 1, 9, 9, 3, 0, 4, 7, 2, 2];
        let rmq = Rmq::new(values.clone());
        for from in 0..=values.len() {
            for to in from..=values.len() {
                assert_eq!(
                    rmq.min(from, to),
                    brute(&values, from, to),
                    "[{from}, {to})"
                );
            }
        }
    }

    #[test]
    fn larger_randomised() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(44);
        let values: Vec<u32> = (0..5000).map(|_| rng.gen_range(0..1_000_000)).collect();
        let rmq = Rmq::new(values.clone());
        for _ in 0..2000 {
            let from = rng.gen_range(0..values.len());
            let to = rng.gen_range(from..=values.len());
            assert_eq!(rmq.min(from, to), brute(&values, from, to));
        }
    }

    #[test]
    fn empty_and_single() {
        let rmq = Rmq::new(vec![]);
        assert!(rmq.is_empty());
        assert_eq!(rmq.min(0, 0), u32::MAX);
        let rmq = Rmq::new(vec![7]);
        assert_eq!(rmq.min(0, 1), 7);
        assert_eq!(rmq.min(1, 1), u32::MAX);
    }

    #[test]
    fn exact_block_boundaries() {
        let values: Vec<u32> = (0..(BLOCK as u32 * 4)).map(|i| (i * 37) % 101).collect();
        let rmq = Rmq::new(values.clone());
        assert_eq!(rmq.min(0, BLOCK), brute(&values, 0, BLOCK));
        assert_eq!(rmq.min(BLOCK, 2 * BLOCK), brute(&values, BLOCK, 2 * BLOCK));
        assert_eq!(rmq.min(0, 4 * BLOCK), brute(&values, 0, 4 * BLOCK));
        assert_eq!(rmq.min(1, 4 * BLOCK - 1), brute(&values, 1, 4 * BLOCK - 1));
        assert_eq!(
            rmq.min(BLOCK - 1, 3 * BLOCK + 1),
            brute(&values, BLOCK - 1, 3 * BLOCK + 1)
        );
    }

    #[test]
    fn memory_is_reported() {
        let rmq = Rmq::new((0..10_000u32).collect());
        assert!(rmq.memory_bytes() >= 40_000);
    }
}
