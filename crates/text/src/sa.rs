//! Suffix array construction.
//!
//! The main construction is prefix doubling with radix sort: `O(n log n)`
//! time, `O(n)` additional space, no recursion, and straightforward to audit.
//! A naive `O(n² log n)` construction is provided for differential testing.
//!
//! Suffixes are compared as if the text were followed by a unique sentinel
//! smaller than every letter (the usual `$` convention), i.e. a proper prefix
//! sorts before any string it prefixes.

/// Builds the suffix array of `text`: `sa[r]` is the starting position of the
/// `r`-th smallest suffix.
///
/// Runs in `O(n log n)` time using prefix doubling with counting sort.
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }

    // Initial ranks: the letters themselves (+1 so that 0 is free for "past
    // the end", which must sort first).
    let mut rank: Vec<u32> = text.iter().map(|&c| c as u32 + 1).collect();
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut tmp_rank: Vec<u32> = vec![0; n];
    let mut buckets: Vec<u32> = Vec::new();
    let mut sorted_by_second: Vec<u32> = vec![0; n];

    let mut h = 1usize;
    loop {
        // Radix sort by (rank[i], rank[i + h]) — least significant digit
        // (the second component) first, then the first component, both with
        // counting sort for stability.
        let key2 = |i: u32| -> u32 {
            let j = i as usize + h;
            if j < n {
                rank[j]
            } else {
                0
            }
        };

        // Counting sort by second component. Keys are ranks, which start as
        // letter values (+1) and later become at most n; size the buckets for
        // both regimes.
        let max_key = (n as u32 + 1).max(257);
        buckets.clear();
        buckets.resize(max_key as usize + 1, 0);
        for i in 0..n as u32 {
            buckets[key2(i) as usize] += 1;
        }
        let mut sum = 0u32;
        for b in buckets.iter_mut() {
            let c = *b;
            *b = sum;
            sum += c;
        }
        for i in 0..n as u32 {
            let k = key2(i) as usize;
            sorted_by_second[buckets[k] as usize] = i;
            buckets[k] += 1;
        }

        // Counting sort by first component (stable).
        buckets.clear();
        buckets.resize(max_key as usize + 1, 0);
        for &i in sorted_by_second.iter() {
            buckets[rank[i as usize] as usize] += 1;
        }
        let mut sum = 0u32;
        for b in buckets.iter_mut() {
            let c = *b;
            *b = sum;
            sum += c;
        }
        for &i in sorted_by_second.iter() {
            let k = rank[i as usize] as usize;
            sa[buckets[k] as usize] = i;
            buckets[k] += 1;
        }

        // Re-rank.
        let mut r = 1u32;
        tmp_rank[sa[0] as usize] = 1;
        for w in 1..n {
            let a = sa[w - 1] as usize;
            let b = sa[w] as usize;
            let ka = (rank[a], if a + h < n { rank[a + h] } else { 0 });
            let kb = (rank[b], if b + h < n { rank[b + h] } else { 0 });
            if ka != kb {
                r += 1;
            }
            tmp_rank[b] = r;
        }
        std::mem::swap(&mut rank, &mut tmp_rank);
        if r as usize == n {
            break;
        }
        h *= 2;
        if h >= n {
            // All ranks must already be distinct once h ≥ n; one more pass
            // would be a no-op, but guard against pathological inputs.
            break;
        }
    }
    sa
}

/// The inverse suffix array (`rank`): `rank[i]` is the position of suffix `i`
/// in the suffix array.
pub fn inverse_suffix_array(sa: &[u32]) -> Vec<u32> {
    let mut rank = vec![0u32; sa.len()];
    for (r, &s) in sa.iter().enumerate() {
        rank[s as usize] = r as u32;
    }
    rank
}

/// Naive `O(n² log n)` suffix array, for differential testing only.
pub fn suffix_array_naive(text: &[u8]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_tiny() {
        assert!(suffix_array(b"").is_empty());
        assert_eq!(suffix_array(b"a"), vec![0]);
        assert_eq!(suffix_array(b"ba"), vec![1, 0]);
        assert_eq!(suffix_array(b"ab"), vec![0, 1]);
        assert_eq!(suffix_array(b"aa"), vec![1, 0]);
    }

    #[test]
    fn banana() {
        // Classic example: suffixes of "banana" sorted: a, ana, anana, banana, na, nana.
        assert_eq!(suffix_array(b"banana"), vec![5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn paper_figure2_text() {
        // Fig. 2 of the paper: suffix tree of CAGAGA$; the suffix array of
        // "CAGAGA" (without sentinel, ranks) sorted: A(5), AGA(3), AGAGA(1),
        // CAGAGA(0), GA(4), GAGA(2).
        assert_eq!(suffix_array(b"CAGAGA"), vec![5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn matches_naive_on_random_texts() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(123);
        for sigma in [1u8, 2, 4, 8, 91] {
            for len in [2usize, 3, 7, 50, 257, 1000] {
                let text: Vec<u8> = (0..len).map(|_| rng.gen_range(0..sigma)).collect();
                assert_eq!(
                    suffix_array(&text),
                    suffix_array_naive(&text),
                    "sigma={sigma} len={len}"
                );
            }
        }
    }

    #[test]
    fn repetitive_text() {
        let text = vec![0u8; 500];
        let sa = suffix_array(&text);
        // All-equal letters: suffixes sort by decreasing length ⇒ sa = n-1, n-2, …, 0.
        let expected: Vec<u32> = (0..500u32).rev().collect();
        assert_eq!(sa, expected);
    }

    #[test]
    fn inverse_is_a_permutation_inverse() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let text: Vec<u8> = (0..300).map(|_| rng.gen_range(0..4u8)).collect();
        let sa = suffix_array(&text);
        let rank = inverse_suffix_array(&sa);
        for (r, &s) in sa.iter().enumerate() {
            assert_eq!(rank[s as usize] as usize, r);
        }
    }

    #[test]
    fn is_a_permutation() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let text: Vec<u8> = (0..777).map(|_| rng.gen_range(0..3u8)).collect();
        let mut sa = suffix_array(&text);
        sa.sort_unstable();
        assert_eq!(sa, (0..777u32).collect::<Vec<u32>>());
    }
}
