//! Suffix array construction.
//!
//! The default construction is **SA-IS** (Nong, Zhang & Chan: *Two Efficient
//! Algorithms for Linear Time Suffix Array Construction*): induced sorting of
//! LMS substrings with recursion on the reduced string — `O(n)` time and
//! `O(n)` space. Two slower builders are retained exclusively for
//! differential testing:
//!
//! * [`suffix_array_prefix_doubling`] — the previous default, prefix doubling
//!   with radix sort in `O(n log n)`;
//! * [`suffix_array_naive`] — direct suffix sorting in `O(n² log n)`.
//!
//! Suffixes are compared as if the text were followed by a unique sentinel
//! smaller than every letter (the usual `$` convention), i.e. a proper prefix
//! sorts before any string it prefixes. Internally SA-IS materialises that
//! sentinel (letters are shifted up by one and a `0` is appended), so the
//! published array never contains it.

/// Marks an empty slot during induced sorting.
const EMPTY: u32 = u32::MAX;

/// Builds the suffix array of `text`: `sa[r]` is the starting position of the
/// `r`-th smallest suffix.
///
/// Runs in `O(n)` time via SA-IS.
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    // Shift letters by +1 and append the unique smallest sentinel 0.
    let mut s: Vec<u32> = Vec::with_capacity(n + 1);
    s.extend(text.iter().map(|&c| c as u32 + 1));
    s.push(0);
    let mut sa = vec![EMPTY; n + 1];
    sais(&s, 257, &mut sa);
    // sa[0] is the sentinel suffix; the callers' convention excludes it.
    sa[1..].to_vec()
}

/// The SA-IS recursion: `s` ends with a unique smallest sentinel `0` and its
/// letters lie in `[0, sigma)`; on return `sa` holds the suffix array of `s`
/// (sentinel suffix included).
fn sais(s: &[u32], sigma: usize, sa: &mut [u32]) {
    let n = s.len();
    debug_assert_eq!(n, sa.len());
    if n == 1 {
        sa[0] = 0;
        return;
    }
    if n == 2 {
        sa[0] = 1;
        sa[1] = 0;
        return;
    }

    // One reverse pass computes suffix types (S-type iff the suffix is
    // smaller than its right neighbour; the sentinel is S by definition),
    // letter counts and the LMS positions (collected in reverse text order).
    let mut is_s = vec![false; n];
    let mut counts = vec![0u32; sigma];
    let mut lms: Vec<u32> = Vec::new();
    is_s[n - 1] = true;
    counts[s[n - 1] as usize] += 1;
    for i in (0..n - 1).rev() {
        counts[s[i] as usize] += 1;
        let s_type = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
        if !s_type && is_s[i + 1] {
            lms.push(i as u32 + 1);
        }
        is_s[i] = s_type;
    }
    lms.reverse();
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    // Shared scratch for the bucket cursors of both induce rounds.
    let mut cursors = vec![0u32; sigma];

    // Pass 1: induce from the unsorted LMS set; this sorts the LMS
    // *substrings* (Nong et al., Theorem 3.12).
    induce(s, sa, &is_s, &counts, &lms, &mut cursors);

    // Name the LMS substrings in their now-sorted order. Two LMS positions
    // are never adjacent, so names are stored at `position / 2` in a
    // half-sized scratch array.
    let mut names = vec![EMPTY; n / 2 + 1];
    let mut name = 0u32;
    let mut prev: Option<usize> = None;
    for &p in sa.iter() {
        let p = p as usize;
        if !is_lms(p) {
            continue;
        }
        if let Some(q) = prev {
            if !lms_substrings_equal(s, &is_s, &is_lms, q, p) {
                name += 1;
            }
        }
        names[p / 2] = name;
        prev = Some(p);
    }
    let num_names = name as usize + 1;

    // The reduced string: LMS names in text order. It inherits the sentinel
    // convention (the sentinel's LMS substring is the unique smallest, so its
    // name is 0 and it sits last).
    let s1: Vec<u32> = lms.iter().map(|&p| names[p as usize / 2]).collect();
    drop(names);
    let mut sa1 = vec![EMPTY; s1.len()];
    if num_names == s1.len() {
        // All names distinct: the reduced suffix array is the inverse
        // permutation — no recursion needed.
        for (i, &nm) in s1.iter().enumerate() {
            sa1[nm as usize] = i as u32;
        }
    } else {
        sais(&s1, num_names, &mut sa1);
    }

    // Pass 2: induce from the fully sorted LMS suffixes (rewrite `sa1` into
    // absolute positions in place, reusing its allocation).
    let mut sorted_lms = sa1;
    for r in sorted_lms.iter_mut() {
        *r = lms[*r as usize];
    }
    induce(s, sa, &is_s, &counts, &sorted_lms, &mut cursors);
}

/// One round of induced sorting: seeds the given LMS positions (in the given
/// relative order) at their bucket tails, then induces L-suffixes left to
/// right and S-suffixes right to left. `cursors` is caller-provided scratch
/// of `counts.len()` slots.
fn induce(
    s: &[u32],
    sa: &mut [u32],
    is_s: &[bool],
    counts: &[u32],
    lms: &[u32],
    cursors: &mut [u32],
) {
    let n = s.len();
    sa.fill(EMPTY);

    // Seed LMS suffixes at bucket tails; reverse iteration keeps the given
    // order within each bucket.
    bucket_tails(counts, cursors);
    for &p in lms.iter().rev() {
        let c = s[p as usize] as usize;
        cursors[c] -= 1;
        sa[cursors[c] as usize] = p;
    }

    // L-pass (left to right, bucket heads).
    bucket_heads(counts, cursors);
    for i in 0..n {
        let p = sa[i];
        if p == EMPTY || p == 0 {
            continue;
        }
        let j = (p - 1) as usize;
        if !is_s[j] {
            let c = s[j] as usize;
            sa[cursors[c] as usize] = j as u32;
            cursors[c] += 1;
        }
    }

    // S-pass (right to left, bucket tails); overwrites the seeded LMS slots
    // with their final positions.
    bucket_tails(counts, cursors);
    for i in (0..n).rev() {
        let p = sa[i];
        if p == EMPTY || p == 0 {
            continue;
        }
        let j = (p - 1) as usize;
        if is_s[j] {
            let c = s[j] as usize;
            cursors[c] -= 1;
            sa[cursors[c] as usize] = j as u32;
        }
    }
}

fn bucket_heads(counts: &[u32], cursors: &mut [u32]) {
    let mut sum = 0u32;
    for (cursor, &c) in cursors.iter_mut().zip(counts) {
        *cursor = sum;
        sum += c;
    }
}

fn bucket_tails(counts: &[u32], cursors: &mut [u32]) {
    let mut sum = 0u32;
    for (cursor, &c) in cursors.iter_mut().zip(counts) {
        sum += c;
        *cursor = sum;
    }
}

/// Equality of the LMS substrings starting at `a` and `b` (letters *and*
/// types up to and including the next LMS position).
fn lms_substrings_equal(
    s: &[u32],
    is_s: &[bool],
    is_lms: &impl Fn(usize) -> bool,
    a: usize,
    b: usize,
) -> bool {
    if a == b {
        return true;
    }
    let n = s.len();
    // The sentinel substring is the unique occurrence of the letter 0.
    if a == n - 1 || b == n - 1 {
        return false;
    }
    let mut off = 0usize;
    loop {
        let (pa, pb) = (a + off, b + off);
        if s[pa] != s[pb] || is_s[pa] != is_s[pb] {
            return false;
        }
        if off > 0 && is_lms(pa) {
            // Both reached their closing LMS position simultaneously (types
            // matched above), so the substrings are identical.
            return true;
        }
        off += 1;
        // Walking past the sentinel is impossible: every LMS substring ends
        // at the next LMS position and the sentinel is one.
        debug_assert!(pa + 1 < n && pb + 1 < n);
    }
}

/// The inverse suffix array (`rank`): `rank[i]` is the position of suffix `i`
/// in the suffix array.
pub fn inverse_suffix_array(sa: &[u32]) -> Vec<u32> {
    let mut rank = vec![0u32; sa.len()];
    for (r, &s) in sa.iter().enumerate() {
        rank[s as usize] = r as u32;
    }
    rank
}

/// The previous default construction, kept for differential testing: prefix
/// doubling with radix sort, `O(n log n)` time, `O(n)` additional space.
pub fn suffix_array_prefix_doubling(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }

    // Initial ranks: the letters themselves (+1 so that 0 is free for "past
    // the end", which must sort first).
    let mut rank: Vec<u32> = text.iter().map(|&c| c as u32 + 1).collect();
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut tmp_rank: Vec<u32> = vec![0; n];
    let mut buckets: Vec<u32> = Vec::new();
    let mut sorted_by_second: Vec<u32> = vec![0; n];

    let mut h = 1usize;
    loop {
        // Radix sort by (rank[i], rank[i + h]) — least significant digit
        // (the second component) first, then the first component, both with
        // counting sort for stability.
        let key2 = |i: u32| -> u32 {
            let j = i as usize + h;
            if j < n {
                rank[j]
            } else {
                0
            }
        };

        // Counting sort by second component. Keys are ranks, which start as
        // letter values (+1) and later become at most n; size the buckets for
        // both regimes.
        let max_key = (n as u32 + 1).max(257);
        buckets.clear();
        buckets.resize(max_key as usize + 1, 0);
        for i in 0..n as u32 {
            buckets[key2(i) as usize] += 1;
        }
        let mut sum = 0u32;
        for b in buckets.iter_mut() {
            let c = *b;
            *b = sum;
            sum += c;
        }
        for i in 0..n as u32 {
            let k = key2(i) as usize;
            sorted_by_second[buckets[k] as usize] = i;
            buckets[k] += 1;
        }

        // Counting sort by first component (stable).
        buckets.clear();
        buckets.resize(max_key as usize + 1, 0);
        for &i in sorted_by_second.iter() {
            buckets[rank[i as usize] as usize] += 1;
        }
        let mut sum = 0u32;
        for b in buckets.iter_mut() {
            let c = *b;
            *b = sum;
            sum += c;
        }
        for &i in sorted_by_second.iter() {
            let k = rank[i as usize] as usize;
            sa[buckets[k] as usize] = i;
            buckets[k] += 1;
        }

        // Re-rank.
        let mut r = 1u32;
        tmp_rank[sa[0] as usize] = 1;
        for w in 1..n {
            let a = sa[w - 1] as usize;
            let b = sa[w] as usize;
            let ka = (rank[a], if a + h < n { rank[a + h] } else { 0 });
            let kb = (rank[b], if b + h < n { rank[b + h] } else { 0 });
            if ka != kb {
                r += 1;
            }
            tmp_rank[b] = r;
        }
        std::mem::swap(&mut rank, &mut tmp_rank);
        if r as usize == n {
            break;
        }
        h *= 2;
        if h >= n {
            // All ranks must already be distinct once h ≥ n; one more pass
            // would be a no-op, but guard against pathological inputs.
            break;
        }
    }
    sa
}

/// Naive `O(n² log n)` suffix array, for differential testing only.
pub fn suffix_array_naive(text: &[u8]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_tiny() {
        for build in [suffix_array, suffix_array_prefix_doubling] {
            assert!(build(b"").is_empty());
            assert_eq!(build(b"a"), vec![0]);
            assert_eq!(build(b"ba"), vec![1, 0]);
            assert_eq!(build(b"ab"), vec![0, 1]);
            assert_eq!(build(b"aa"), vec![1, 0]);
        }
    }

    #[test]
    fn banana() {
        // Classic example: suffixes of "banana" sorted: a, ana, anana, banana, na, nana.
        assert_eq!(suffix_array(b"banana"), vec![5, 3, 1, 0, 4, 2]);
        assert_eq!(
            suffix_array_prefix_doubling(b"banana"),
            vec![5, 3, 1, 0, 4, 2]
        );
    }

    #[test]
    fn paper_figure2_text() {
        // Fig. 2 of the paper: suffix tree of CAGAGA$; the suffix array of
        // "CAGAGA" (without sentinel, ranks) sorted: A(5), AGA(3), AGAGA(1),
        // CAGAGA(0), GA(4), GAGA(2).
        assert_eq!(suffix_array(b"CAGAGA"), vec![5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn matches_naive_on_random_texts() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(123);
        for sigma in [1u8, 2, 4, 8, 91] {
            for len in [2usize, 3, 7, 50, 257, 1000] {
                let text: Vec<u8> = (0..len).map(|_| rng.gen_range(0..sigma)).collect();
                let expected = suffix_array_naive(&text);
                assert_eq!(
                    suffix_array(&text),
                    expected,
                    "sais sigma={sigma} len={len}"
                );
                assert_eq!(
                    suffix_array_prefix_doubling(&text),
                    expected,
                    "doubling sigma={sigma} len={len}"
                );
            }
        }
    }

    #[test]
    fn repetitive_text() {
        let text = vec![0u8; 500];
        // All-equal letters: suffixes sort by decreasing length ⇒ sa = n-1, n-2, …, 0.
        let expected: Vec<u32> = (0..500u32).rev().collect();
        assert_eq!(suffix_array(&text), expected);
        assert_eq!(suffix_array_prefix_doubling(&text), expected);
    }

    #[test]
    fn inverse_is_a_permutation_inverse() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let text: Vec<u8> = (0..300).map(|_| rng.gen_range(0..4u8)).collect();
        let sa = suffix_array(&text);
        let rank = inverse_suffix_array(&sa);
        for (r, &s) in sa.iter().enumerate() {
            assert_eq!(rank[s as usize] as usize, r);
        }
    }

    #[test]
    fn is_a_permutation() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let text: Vec<u8> = (0..777).map(|_| rng.gen_range(0..3u8)).collect();
        let mut sa = suffix_array(&text);
        sa.sort_unstable();
        assert_eq!(sa, (0..777u32).collect::<Vec<u32>>());
    }

    #[test]
    fn sais_handles_deep_recursion_inputs() {
        // Thue–Morse-like and Fibonacci words force many LMS levels.
        let mut fib: Vec<u8> = vec![0];
        let mut prev: Vec<u8> = vec![0, 1];
        for _ in 0..12 {
            let next = [prev.as_slice(), fib.as_slice()].concat();
            fib = std::mem::replace(&mut prev, next);
        }
        assert!(prev.len() > 300);
        assert_eq!(suffix_array(&prev), suffix_array_prefix_doubling(&prev));

        let tm: Vec<u8> = (0..1024u32).map(|i| (i.count_ones() & 1) as u8).collect();
        assert_eq!(suffix_array(&tm), suffix_array_prefix_doubling(&tm));
    }
}
