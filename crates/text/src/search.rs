//! Pattern search over suffix arrays.

use crate::sa::suffix_array;

/// A plain suffix-array index over one text, answering pattern-matching
/// queries by binary search in `O(m log n)` time.
///
/// Used directly by the classic (non-weighted) baselines and the examples; the
/// weighted indexes use richer structures but share the same search shape.
#[derive(Debug, Clone)]
pub struct SuffixArraySearcher {
    text: Vec<u8>,
    sa: Vec<u32>,
}

impl SuffixArraySearcher {
    /// Builds the index, taking ownership of the text.
    pub fn new(text: Vec<u8>) -> Self {
        let sa = suffix_array(&text);
        Self { text, sa }
    }

    /// The indexed text.
    #[inline]
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// The suffix array.
    #[inline]
    pub fn sa(&self) -> &[u32] {
        &self.sa
    }

    /// The half-open suffix-array interval of suffixes having `pattern` as a
    /// prefix.
    pub fn equal_range(&self, pattern: &[u8]) -> (usize, usize) {
        let lo = self.partition_point(|suffix| suffix < pattern);
        let hi = self.partition_point(|suffix| {
            let prefix_len = suffix.len().min(pattern.len());
            &suffix[..prefix_len] <= pattern
        });
        (lo, hi)
    }

    /// All starting positions of `pattern` in the text, in increasing order.
    pub fn find_all(&self, pattern: &[u8]) -> Vec<usize> {
        let mut positions = Vec::new();
        self.find_all_into(pattern, &mut positions);
        positions
    }

    /// Like [`SuffixArraySearcher::find_all`] but appending into a reused
    /// buffer (cleared first), so steady-state lookups allocate nothing once
    /// the buffer has warmed up. [`SuffixArraySearcher::count`] and
    /// [`SuffixArraySearcher::equal_range`] skip position materialisation
    /// entirely.
    pub fn find_all_into(&self, pattern: &[u8], out: &mut Vec<usize>) {
        out.clear();
        if pattern.is_empty() {
            out.extend(0..self.text.len());
            return;
        }
        let (lo, hi) = self.equal_range(pattern);
        out.extend(self.sa[lo..hi].iter().map(|&s| s as usize));
        out.sort_unstable();
    }

    /// Number of occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        if pattern.is_empty() {
            return self.text.len();
        }
        let (lo, hi) = self.equal_range(pattern);
        hi - lo
    }

    /// First index in the suffix array for which `pred(suffix)` is false
    /// (the suffix array must be "partitioned" by `pred`, which holds for the
    /// monotone predicates used above).
    fn partition_point<F: Fn(&[u8]) -> bool>(&self, pred: F) -> usize {
        let mut lo = 0usize;
        let mut hi = self.sa.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let suffix = &self.text[self.sa[mid] as usize..];
            if pred(suffix) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Approximate heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.text.capacity() + self.sa.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_find(text: &[u8], pattern: &[u8]) -> Vec<usize> {
        if pattern.is_empty() || pattern.len() > text.len() {
            return Vec::new();
        }
        (0..=text.len() - pattern.len())
            .filter(|&i| &text[i..i + pattern.len()] == pattern)
            .collect()
    }

    #[test]
    fn banana_queries() {
        let idx = SuffixArraySearcher::new(b"banana".to_vec());
        assert_eq!(idx.find_all(b"ana"), vec![1, 3]);
        assert_eq!(idx.find_all(b"na"), vec![2, 4]);
        assert_eq!(idx.find_all(b"banana"), vec![0]);
        assert_eq!(idx.find_all(b"bananaa"), Vec::<usize>::new());
        assert_eq!(idx.find_all(b"x"), Vec::<usize>::new());
        assert_eq!(idx.count(b"a"), 3);
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let text: Vec<u8> = (0..300).map(|_| rng.gen_range(0..3u8)).collect();
            let idx = SuffixArraySearcher::new(text.clone());
            for _ in 0..50 {
                let len = rng.gen_range(1..8usize);
                let start = rng.gen_range(0..text.len() - len);
                let pattern: Vec<u8> = if rng.gen_bool(0.7) {
                    text[start..start + len].to_vec()
                } else {
                    (0..len).map(|_| rng.gen_range(0..3u8)).collect()
                };
                assert_eq!(idx.find_all(&pattern), naive_find(&text, &pattern));
                assert_eq!(idx.count(&pattern), naive_find(&text, &pattern).len());
            }
        }
    }

    #[test]
    fn empty_pattern_matches_everywhere() {
        let idx = SuffixArraySearcher::new(b"abc".to_vec());
        assert_eq!(idx.find_all(b""), vec![0, 1, 2]);
    }

    #[test]
    fn find_all_into_reuses_the_buffer() {
        let idx = SuffixArraySearcher::new(b"banana".to_vec());
        let mut buf = vec![99, 98, 97];
        idx.find_all_into(b"ana", &mut buf);
        assert_eq!(buf, vec![1, 3]);
        idx.find_all_into(b"zzz", &mut buf);
        assert!(buf.is_empty());
        idx.find_all_into(b"", &mut buf);
        assert_eq!(buf, vec![0, 1, 2, 3, 4, 5]);
    }
}
