//! Suffix trees for standard strings.
//!
//! Built from the suffix array + LCP array (rather than Ukkonen/Weiner
//! online construction); the result is the classic compacted trie of all
//! suffixes (Fig. 2 of the paper) and supports `O(m + occ)`-style pattern
//! queries. It also demonstrates how [`crate::trie::CompactedTrie`] is meant
//! to be driven — the weighted indexes use the same machinery with richer
//! label providers.

use crate::lcp::lcp_array;
use crate::sa::suffix_array;
use crate::trie::{CompactedTrie, LabelProvider, SliceLabels};

/// A suffix tree over one text.
#[derive(Debug, Clone)]
pub struct SuffixTree {
    text: Vec<u8>,
    /// Suffix start position per sorted leaf.
    leaf_to_suffix: Vec<u32>,
    trie: CompactedTrie,
}

impl SuffixTree {
    /// Builds the suffix tree of `text`.
    pub fn new(text: Vec<u8>) -> Self {
        let sa = suffix_array(&text);
        let lcp = lcp_array(&text, &sa);
        let n = text.len();
        let fragments: Vec<(u32, u32)> = sa.iter().map(|&s| (s, (n as u32) - s)).collect();
        let lengths: Vec<usize> = fragments.iter().map(|&(_, l)| l as usize).collect();
        let lcps: Vec<usize> = lcp.iter().map(|&v| v as usize).collect();
        let labels = SliceLabels::new(&text, fragments);
        let trie = CompactedTrie::build(&lengths, &lcps, &labels);
        Self {
            text,
            leaf_to_suffix: sa,
            trie,
        }
    }

    /// The indexed text.
    #[inline]
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// Number of nodes of the tree.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.trie.num_nodes()
    }

    /// The underlying compacted trie.
    #[inline]
    pub fn trie(&self) -> &CompactedTrie {
        &self.trie
    }

    /// All starting positions of `pattern` in the text, in increasing order.
    pub fn find_all(&self, pattern: &[u8]) -> Vec<usize> {
        let labels = self.labels();
        match self.trie.descend(pattern, &labels) {
            Some(descent) => {
                let (lo, hi) = descent.leaves;
                let mut positions: Vec<usize> = (lo..hi)
                    .map(|leaf| self.leaf_to_suffix[leaf as usize] as usize)
                    .filter(|&s| s + pattern.len() <= self.text.len())
                    .collect();
                positions.sort_unstable();
                positions
            }
            None => Vec::new(),
        }
    }

    /// Number of occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.find_all(pattern).len()
    }

    /// Approximate heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.text.capacity() + self.leaf_to_suffix.capacity() * 4 + self.trie.memory_bytes()
    }

    fn labels(&self) -> SliceLabels<'_> {
        let n = self.text.len() as u32;
        let fragments: Vec<(u32, u32)> = self.leaf_to_suffix.iter().map(|&s| (s, n - s)).collect();
        SliceLabels::new(&self.text, fragments)
    }
}

/// A [`LabelProvider`] adapter exposing suffixes of a borrowed text; public
/// so downstream crates can reuse it when they keep their own suffix lists.
#[derive(Debug, Clone)]
pub struct SuffixLabels<'a> {
    text: &'a [u8],
    starts: &'a [u32],
}

impl<'a> SuffixLabels<'a> {
    /// Creates the provider; `starts[leaf]` is the text position where the
    /// `leaf`-th (sorted) suffix begins.
    pub fn new(text: &'a [u8], starts: &'a [u32]) -> Self {
        Self { text, starts }
    }
}

impl LabelProvider for SuffixLabels<'_> {
    #[inline]
    fn letter(&self, leaf: usize, depth: usize) -> Option<u8> {
        self.text.get(self.starts[leaf] as usize + depth).copied()
    }

    #[inline]
    fn len(&self, leaf: usize) -> usize {
        self.text.len() - self.starts[leaf] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_find(text: &[u8], pattern: &[u8]) -> Vec<usize> {
        if pattern.is_empty() || pattern.len() > text.len() {
            return Vec::new();
        }
        (0..=text.len() - pattern.len())
            .filter(|&i| &text[i..i + pattern.len()] == pattern)
            .collect()
    }

    #[test]
    fn figure2_example() {
        // Fig. 2 of the paper: suffix tree of CAGAGA$. We index CAGAGA
        // without the sentinel; the suffix count and query results match.
        let st = SuffixTree::new(b"CAGAGA".to_vec());
        assert_eq!(st.find_all(b"GA"), vec![2, 4]);
        assert_eq!(st.find_all(b"AGA"), vec![1, 3]);
        assert_eq!(st.find_all(b"CAGAGA"), vec![0]);
        assert_eq!(st.find_all(b"GAGAGA"), Vec::<usize>::new());
        // A suffix tree over n letters has at most 2n nodes (plus root).
        assert!(st.num_nodes() <= 2 * 6 + 1);
    }

    #[test]
    fn matches_naive_search() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let text: Vec<u8> = (0..250).map(|_| rng.gen_range(0..4u8)).collect();
            let st = SuffixTree::new(text.clone());
            for _ in 0..40 {
                let len = rng.gen_range(1..9usize);
                let pattern: Vec<u8> = if rng.gen_bool(0.7) {
                    let start = rng.gen_range(0..text.len() - len);
                    text[start..start + len].to_vec()
                } else {
                    (0..len).map(|_| rng.gen_range(0..4u8)).collect()
                };
                assert_eq!(st.find_all(&pattern), naive_find(&text, &pattern));
            }
        }
    }

    #[test]
    fn single_letter_text() {
        let st = SuffixTree::new(vec![3u8]);
        assert_eq!(st.find_all(&[3]), vec![0]);
        assert!(st.find_all(&[2]).is_empty());
        assert_eq!(st.count(&[3]), 1);
    }

    #[test]
    fn memory_is_linear_ish() {
        let st_small = SuffixTree::new(vec![0u8; 100]);
        let st_large = SuffixTree::new(vec![0u8; 1000]);
        assert!(st_large.memory_bytes() > st_small.memory_bytes());
        assert!(st_large.memory_bytes() < 200 * 1000);
    }
}
