//! Compacted tries over implicitly labelled string sets.
//!
//! A [`CompactedTrie`] is the compacted trie (Patricia trie) of a
//! lexicographically sorted collection of strings. Crucially, the trie does
//! **not** store its edge labels: all label accesses go through a
//! [`LabelProvider`], so the very same structure serves
//!
//! * the classic weighted suffix tree, whose labels are fragments of the
//!   concatenated z-estimation (provided by [`SliceLabels`]), and
//! * the minimizer solid factor trees of the paper, whose labels are
//!   reconstructed from the heavy string plus at most `log₂ z` stored
//!   mismatches per factor (Corollary 4) — the `O(log z)`-bits-per-edge
//!   encoding that makes the index small.
//!
//! Construction takes the sorted strings' lengths and the LCP values of
//! neighbouring strings; it is the standard stack-based suffix-array-to-tree
//! algorithm and runs in linear time in the number of strings.

/// Access to the letters of the sorted strings underlying a trie.
pub trait LabelProvider {
    /// The letter at depth `depth` (0-based from the string start) of the
    /// `leaf`-th string in sorted order, or `None` past its end.
    fn letter(&self, leaf: usize, depth: usize) -> Option<u8>;

    /// Length of the `leaf`-th string.
    fn len(&self, leaf: usize) -> usize;
}

/// A [`LabelProvider`] for strings that are fragments of one backing text.
#[derive(Debug, Clone)]
pub struct SliceLabels<'a> {
    text: &'a [u8],
    /// `(start, length)` of each sorted string within `text`.
    fragments: Vec<(u32, u32)>,
}

impl<'a> SliceLabels<'a> {
    /// Creates a provider for the given fragments (already in sorted string
    /// order).
    pub fn new(text: &'a [u8], fragments: Vec<(u32, u32)>) -> Self {
        Self { text, fragments }
    }

    /// The fragments backing each sorted string.
    pub fn fragments(&self) -> &[(u32, u32)] {
        &self.fragments
    }
}

impl LabelProvider for SliceLabels<'_> {
    #[inline]
    fn letter(&self, leaf: usize, depth: usize) -> Option<u8> {
        let (start, len) = self.fragments[leaf];
        if depth < len as usize {
            Some(self.text[start as usize + depth])
        } else {
            None
        }
    }

    #[inline]
    fn len(&self, leaf: usize) -> usize {
        self.fragments[leaf].1 as usize
    }
}

use ius_arena::ArenaVec;

/// Sentinel "first letter" for zero-length edges (duplicate strings).
const NO_LETTER: u8 = u8::MAX;

/// One node of a compacted trie — a construction-time temporary; the built
/// trie stores nodes as a struct of flat arrays (see [`CompactedTrie`]).
#[derive(Debug, Clone)]
struct Node {
    /// String depth: number of letters on the root-to-node path.
    depth: u32,
    /// Half-open range of sorted leaf indices below this node.
    leaf_lo: u32,
    leaf_hi: u32,
    /// `true` if the node is a leaf (corresponds to exactly one sorted string).
    is_leaf: bool,
}

/// The flat (struct-of-arrays) representation of a [`CompactedTrie`], used by
/// the persistence layer to save a trie without re-running the stack-based
/// construction on load. All vectors describing nodes have one entry per
/// node; `child_letters`/`child_nodes` hold the flattened child table in the
/// same grouping [`CompactedTrie::children`] exposes. Each array is an
/// [`ArenaVec`], so the parts can either own their storage (the stream load
/// path) or borrow it zero-copy from a persisted arena.
#[derive(Debug, Clone, PartialEq)]
pub struct TrieParts {
    /// String depth per node.
    pub depth: ArenaVec<u32>,
    /// Lower end (inclusive) of each node's sorted-leaf range.
    pub leaf_lo: ArenaVec<u32>,
    /// Upper end (exclusive) of each node's sorted-leaf range.
    pub leaf_hi: ArenaVec<u32>,
    /// Start of each node's children in the flattened child table.
    pub children_start: ArenaVec<u32>,
    /// Number of children per node.
    pub children_len: ArenaVec<u16>,
    /// Leaf flag per node (`1` for leaves, `0` otherwise).
    pub is_leaf: ArenaVec<u8>,
    /// First edge letter per flattened child entry.
    pub child_letters: ArenaVec<u8>,
    /// Child node id per flattened child entry.
    pub child_nodes: ArenaVec<u32>,
    /// The root node id.
    pub root: u32,
    /// Number of strings the trie was built over.
    pub num_leaves: u64,
}

/// The result of descending a pattern in a trie.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descent {
    /// The node at or below which every matching leaf lives.
    pub node: u32,
    /// Half-open range of sorted leaf indices whose strings have the pattern
    /// as a prefix.
    pub leaves: (u32, u32),
}

/// A compacted trie over a sorted string collection with external labels.
///
/// Stored as a struct of flat arrays (one entry per node, plus a flattened
/// child table) so a persisted trie can be reopened as zero-copy views into
/// an [`ius_arena::Arena`] instead of being decoded node by node.
#[derive(Debug, Clone)]
pub struct CompactedTrie {
    depth: ArenaVec<u32>,
    leaf_lo: ArenaVec<u32>,
    leaf_hi: ArenaVec<u32>,
    children_start: ArenaVec<u32>,
    children_len: ArenaVec<u16>,
    is_leaf: ArenaVec<u8>,
    /// First edge letter per flattened child entry, grouped per node.
    child_letters: ArenaVec<u8>,
    /// Child node id per flattened child entry, grouped per node.
    child_nodes: ArenaVec<u32>,
    root: u32,
    num_leaves: usize,
}

impl CompactedTrie {
    /// Builds the compacted trie of `num_leaves` sorted strings.
    ///
    /// * `lengths[i]` — length of the `i`-th string;
    /// * `lcps[i]` — LCP of strings `i-1` and `i` (`lcps[0]` is ignored);
    /// * `labels` — label access used to record the first letter of each edge.
    ///
    /// # Panics
    ///
    /// Panics if the inputs have inconsistent lengths or LCP values exceed
    /// the string lengths.
    pub fn build<L: LabelProvider>(lengths: &[usize], lcps: &[usize], labels: &L) -> Self {
        let num_leaves = lengths.len();
        assert_eq!(
            lcps.len(),
            num_leaves,
            "lcps must have one entry per string"
        );
        let mut nodes: Vec<Node> = Vec::with_capacity(2 * num_leaves.max(1));
        // Temporary children lists; flattened at the end.
        let mut temp_children: Vec<Vec<u32>> = Vec::with_capacity(2 * num_leaves.max(1));
        let new_node = |nodes: &mut Vec<Node>,
                        temp_children: &mut Vec<Vec<u32>>,
                        depth: u32,
                        leaf_lo: u32,
                        is_leaf: bool|
         -> u32 {
            let id = nodes.len() as u32;
            nodes.push(Node {
                depth,
                leaf_lo,
                leaf_hi: leaf_lo,
                is_leaf,
            });
            temp_children.push(Vec::new());
            id
        };

        let root = new_node(&mut nodes, &mut temp_children, 0, 0, false);
        // Stack of the rightmost path: node ids with strictly increasing depth.
        let mut stack: Vec<u32> = vec![root];

        for i in 0..num_leaves {
            let len = lengths[i];
            let lcp = if i == 0 { 0 } else { lcps[i] };
            if i > 0 {
                assert!(
                    lcp <= len && lcp <= lengths[i - 1],
                    "lcp[{i}] = {lcp} exceeds a neighbouring string length"
                );
            }
            // Pop nodes deeper than the LCP.
            let mut last_popped: Option<u32> = None;
            while nodes[*stack.last().expect("stack never empty") as usize].depth > lcp as u32 {
                last_popped = stack.pop();
            }
            let top = *stack.last().expect("stack never empty");
            let branch = if nodes[top as usize].depth == lcp as u32 {
                top
            } else {
                // Split: create an internal node at depth `lcp` between `top`
                // and `last_popped`.
                let popped = last_popped.expect("a node deeper than lcp was popped");
                let popped_leaf_lo = nodes[popped as usize].leaf_lo;
                let split = new_node(
                    &mut nodes,
                    &mut temp_children,
                    lcp as u32,
                    popped_leaf_lo,
                    false,
                );
                // Replace `popped` with `split` among `top`'s children.
                let top_children = &mut temp_children[top as usize];
                let slot = top_children
                    .iter()
                    .position(|&c| c == popped)
                    .expect("popped node must be a child of the stack top");
                top_children[slot] = split;
                temp_children[split as usize].push(popped);
                stack.push(split);
                split
            };
            // Attach the new leaf.
            let leaf = new_node(&mut nodes, &mut temp_children, len as u32, i as u32, true);
            nodes[leaf as usize].leaf_hi = i as u32 + 1;
            temp_children[branch as usize].push(leaf);
            if len as u32 > nodes[branch as usize].depth {
                stack.push(leaf);
            }
        }

        // Propagate leaf ranges bottom-up (nodes are created before their
        // descendants except for split nodes, so do an explicit traversal).
        Self::finish(nodes, temp_children, root, num_leaves, labels)
    }

    /// Flattens children, fills leaf ranges, records edge first letters and
    /// packs the temporary node structs into the flat-array layout.
    fn finish<L: LabelProvider>(
        mut nodes: Vec<Node>,
        temp_children: Vec<Vec<u32>>,
        root: u32,
        num_leaves: usize,
        labels: &L,
    ) -> Self {
        // Iterative post-order to compute leaf ranges.
        let mut order: Vec<u32> = Vec::with_capacity(nodes.len());
        let mut stack: Vec<u32> = vec![root];
        while let Some(node) = stack.pop() {
            order.push(node);
            for &c in &temp_children[node as usize] {
                stack.push(c);
            }
        }
        for &node in order.iter().rev() {
            if !temp_children[node as usize].is_empty() {
                let lo = temp_children[node as usize]
                    .iter()
                    .map(|&c| nodes[c as usize].leaf_lo)
                    .min()
                    .expect("non-empty");
                let hi = temp_children[node as usize]
                    .iter()
                    .map(|&c| nodes[c as usize].leaf_hi)
                    .max()
                    .expect("non-empty");
                let n = &mut nodes[node as usize];
                n.leaf_lo = n.leaf_lo.min(lo);
                n.leaf_hi = n.leaf_hi.max(hi);
            }
        }
        // Pack into the flat arrays, flattening each node's children in
        // order (they are produced in lexicographic order already; the
        // explicit first letters keep zero-length duplicate edges robust).
        let children_total: usize = temp_children.iter().map(Vec::len).sum();
        let mut child_letters: Vec<u8> = Vec::with_capacity(children_total);
        let mut child_nodes: Vec<u32> = Vec::with_capacity(children_total);
        let mut children_start: Vec<u32> = Vec::with_capacity(nodes.len());
        let mut children_len: Vec<u16> = Vec::with_capacity(nodes.len());
        for (node, kids) in temp_children.iter().enumerate() {
            let depth = nodes[node].depth as usize;
            children_start.push(child_letters.len() as u32);
            children_len.push(kids.len() as u16);
            for &c in kids {
                let child = &nodes[c as usize];
                let first = labels
                    .letter(child.leaf_lo as usize, depth)
                    .unwrap_or(NO_LETTER);
                child_letters.push(first);
                child_nodes.push(c);
            }
        }
        CompactedTrie {
            depth: nodes.iter().map(|n| n.depth).collect::<Vec<_>>().into(),
            leaf_lo: nodes.iter().map(|n| n.leaf_lo).collect::<Vec<_>>().into(),
            leaf_hi: nodes.iter().map(|n| n.leaf_hi).collect::<Vec<_>>().into(),
            children_start: children_start.into(),
            children_len: children_len.into(),
            is_leaf: nodes
                .iter()
                .map(|n| u8::from(n.is_leaf))
                .collect::<Vec<_>>()
                .into(),
            child_letters: child_letters.into(),
            child_nodes: child_nodes.into(),
            root,
            num_leaves,
        }
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Number of strings (leaves may be fewer nodes than strings only if the
    /// collection was empty).
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Total number of nodes (internal + leaves).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.depth.len()
    }

    /// String depth of a node.
    #[inline]
    pub fn depth(&self, node: u32) -> usize {
        self.depth[node as usize] as usize
    }

    /// Half-open range of sorted leaf indices under `node`.
    #[inline]
    pub fn leaf_range(&self, node: u32) -> (u32, u32) {
        (self.leaf_lo[node as usize], self.leaf_hi[node as usize])
    }

    /// The half-open child-table range of `node`.
    #[inline]
    fn child_span(&self, node: u32) -> (usize, usize) {
        let start = self.children_start[node as usize] as usize;
        (start, start + self.children_len[node as usize] as usize)
    }

    /// Number of children of `node`.
    #[inline]
    pub fn num_children(&self, node: u32) -> usize {
        self.children_len[node as usize] as usize
    }

    /// Children of `node` as `(first edge letter, child id)` pairs.
    #[inline]
    pub fn children(&self, node: u32) -> impl Iterator<Item = (u8, u32)> + '_ {
        let (start, end) = self.child_span(node);
        self.child_letters[start..end]
            .iter()
            .zip(&self.child_nodes[start..end])
            .map(|(&letter, &child)| (letter, child))
    }

    /// `true` iff `node` is a leaf.
    #[inline]
    pub fn is_leaf(&self, node: u32) -> bool {
        self.is_leaf[node as usize] == 1
    }

    /// Descends `pattern` from the root, returning the range of leaves whose
    /// strings have `pattern` as a prefix (or `None` if no string does).
    ///
    /// Runs in `O(|pattern| + σ·(tree depth))` label accesses.
    pub fn descend<L: LabelProvider>(&self, pattern: &[u8], labels: &L) -> Option<Descent> {
        let mut node = self.root;
        let mut matched = 0usize;
        loop {
            if matched == pattern.len() {
                let (lo, hi) = self.leaf_range(node);
                return Some(Descent {
                    node,
                    leaves: (lo, hi),
                });
            }
            // Pick the child whose edge starts with the next pattern letter.
            let next_letter = pattern[matched];
            let (start, end) = self.child_span(node);
            let child = self.child_letters[start..end]
                .iter()
                .position(|&first| first == next_letter)
                .map(|slot| self.child_nodes[start + slot])?;
            // Match along the edge using the labels of the child's first leaf.
            let child_depth = self.depth[child as usize] as usize;
            let leaf = self.leaf_lo[child as usize] as usize;
            while matched < pattern.len() && matched < child_depth {
                match labels.letter(leaf, matched) {
                    Some(c) if c == pattern[matched] => matched += 1,
                    _ => return None,
                }
            }
            node = child;
        }
    }

    /// Heap bytes owned by this trie itself. Arena-backed views count as
    /// zero here: the single arena allocation is accounted once, by the
    /// structure that retains the [`ius_arena::Arena`] handle.
    pub fn memory_bytes(&self) -> usize {
        self.depth.heap_bytes()
            + self.leaf_lo.heap_bytes()
            + self.leaf_hi.heap_bytes()
            + self.children_start.heap_bytes()
            + self.children_len.heap_bytes()
            + self.is_leaf.heap_bytes()
            + self.child_letters.heap_bytes()
            + self.child_nodes.heap_bytes()
    }

    /// Exports the trie as its flat representation (see [`TrieParts`]).
    /// The internal storage already is the flat layout, so this clones the
    /// arrays (a reference-count bump each for arena-backed views).
    pub fn to_parts(&self) -> TrieParts {
        TrieParts {
            depth: self.depth.clone(),
            leaf_lo: self.leaf_lo.clone(),
            leaf_hi: self.leaf_hi.clone(),
            children_start: self.children_start.clone(),
            children_len: self.children_len.clone(),
            is_leaf: self.is_leaf.clone(),
            child_letters: self.child_letters.clone(),
            child_nodes: self.child_nodes.clone(),
            root: self.root,
            num_leaves: self.num_leaves as u64,
        }
    }

    /// Reassembles a trie from its flat representation — the inverse of
    /// [`CompactedTrie::to_parts`], in `O(nodes + children)` time (no
    /// construction is re-run).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural inconsistency (length
    /// mismatches, out-of-range node ids, child tables out of bounds).
    pub fn from_parts(parts: TrieParts) -> Result<Self, String> {
        let n = parts.depth.len();
        if [
            parts.leaf_lo.len(),
            parts.leaf_hi.len(),
            parts.children_start.len(),
            parts.children_len.len(),
            parts.is_leaf.len(),
        ]
        .iter()
        .any(|&len| len != n)
        {
            return Err("trie node arrays have inconsistent lengths".into());
        }
        if parts.child_letters.len() != parts.child_nodes.len() {
            return Err("trie child arrays have inconsistent lengths".into());
        }
        if n == 0 {
            return Err("a trie always has at least a root node".into());
        }
        if parts.root as usize >= n {
            return Err(format!("root {} out of range ({n} nodes)", parts.root));
        }
        // Structural validation over millions of nodes: phrased as whole-
        // array reduction scans (no early exit, no per-node branching) so
        // they compile to SIMD and an arena open stays cheap; the failing
        // node is located by a second pass only on the error path.
        let children_total = parts.child_nodes.len() as u64;
        let worst_child_end = parts
            .children_start
            .iter()
            .zip(&*parts.children_len)
            .map(|(&start, &len)| u64::from(start) + u64::from(len))
            .fold(0, u64::max);
        if worst_child_end > children_total {
            let i = (0..n)
                .find(|&i| {
                    u64::from(parts.children_start[i]) + u64::from(parts.children_len[i])
                        > children_total
                })
                .unwrap_or(0);
            return Err(format!("child table of node {i} out of bounds"));
        }
        if parts.is_leaf.iter().fold(0, |acc, &f| acc | f) > 1 {
            let i = parts.is_leaf.iter().position(|&f| f > 1).unwrap_or(0);
            return Err(format!("node {i} has a non-boolean leaf flag"));
        }
        let ranges_ok = parts
            .leaf_lo
            .iter()
            .zip(&*parts.leaf_hi)
            .fold(true, |ok, (&lo, &hi)| {
                ok & (lo <= hi) & (u64::from(hi) <= parts.num_leaves)
            });
        if !ranges_ok {
            let i = (0..n)
                .find(|&i| {
                    parts.leaf_lo[i] > parts.leaf_hi[i]
                        || u64::from(parts.leaf_hi[i]) > parts.num_leaves
                })
                .unwrap_or(0);
            return Err(format!("leaf range of node {i} out of bounds"));
        }
        let max_child = parts.child_nodes.iter().fold(0, |m: u32, &c| m.max(c));
        if !parts.child_nodes.is_empty() && max_child as usize >= n {
            return Err("child table references a node out of range".into());
        }
        Ok(Self {
            depth: parts.depth,
            leaf_lo: parts.leaf_lo,
            leaf_hi: parts.leaf_hi,
            children_start: parts.children_start,
            children_len: parts.children_len,
            is_leaf: parts.is_leaf,
            child_letters: parts.child_letters,
            child_nodes: parts.child_nodes,
            root: parts.root,
            num_leaves: parts.num_leaves as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcp::lcp_of;

    /// Builds a trie from explicit strings (sorting them first); returns the
    /// trie, the provider text and sorted strings for reference.
    fn build_from_strings(strings: &[&[u8]]) -> (CompactedTrie, Vec<u8>, Vec<Vec<u8>>) {
        let mut sorted: Vec<Vec<u8>> = strings.iter().map(|s| s.to_vec()).collect();
        sorted.sort();
        let mut text = Vec::new();
        let mut fragments = Vec::new();
        for s in &sorted {
            fragments.push((text.len() as u32, s.len() as u32));
            text.extend_from_slice(s);
        }
        let lengths: Vec<usize> = sorted.iter().map(|s| s.len()).collect();
        let mut lcps = vec![0usize; sorted.len()];
        for i in 1..sorted.len() {
            lcps[i] = lcp_of(&sorted[i - 1], &sorted[i]);
        }
        // SliceLabels borrows text, so rebuild it inside the closure scope.
        let labels = SliceLabels::new(&text, fragments.clone());
        let trie = CompactedTrie::build(&lengths, &lcps, &labels);
        (trie, text, sorted)
    }

    fn descend_leaves(
        trie: &CompactedTrie,
        text: &[u8],
        sorted: &[Vec<u8>],
        pattern: &[u8],
    ) -> Vec<usize> {
        let mut fragments = Vec::new();
        let mut offset = 0u32;
        for s in sorted {
            fragments.push((offset, s.len() as u32));
            offset += s.len() as u32;
        }
        let labels = SliceLabels::new(text, fragments);
        match trie.descend(pattern, &labels) {
            Some(d) => (d.leaves.0..d.leaves.1).map(|x| x as usize).collect(),
            None => Vec::new(),
        }
    }

    #[test]
    fn single_string() {
        let (trie, text, sorted) = build_from_strings(&[b"GATTACA"]);
        assert_eq!(trie.num_leaves(), 1);
        assert_eq!(descend_leaves(&trie, &text, &sorted, b"GAT"), vec![0]);
        assert_eq!(descend_leaves(&trie, &text, &sorted, b"GATTACA"), vec![0]);
        assert!(descend_leaves(&trie, &text, &sorted, b"GATTACAA").is_empty());
        assert!(descend_leaves(&trie, &text, &sorted, b"T").is_empty());
    }

    #[test]
    fn suffixes_of_banana() {
        let strings: Vec<&[u8]> = vec![b"banana", b"anana", b"nana", b"ana", b"na", b"a"];
        let (trie, text, sorted) = build_from_strings(&strings);
        assert_eq!(trie.num_leaves(), 6);
        // Every leaf string with prefix "an": ana, anana → sorted indices.
        let hits = descend_leaves(&trie, &text, &sorted, b"an");
        let expected: Vec<usize> = sorted
            .iter()
            .enumerate()
            .filter(|(_, s)| s.starts_with(b"an"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits, expected);
        // "n" matches nana, na.
        let hits = descend_leaves(&trie, &text, &sorted, b"n");
        assert_eq!(hits.len(), 2);
        // Nodes of a compacted trie over k strings: at most 2k.
        assert!(trie.num_nodes() <= 2 * 6 + 1);
    }

    #[test]
    fn duplicates_and_prefix_strings() {
        let strings: Vec<&[u8]> = vec![b"ab", b"ab", b"abc", b"a", b"b"];
        let (trie, text, sorted) = build_from_strings(&strings);
        assert_eq!(trie.num_leaves(), 5);
        // "ab" is a prefix of ab, ab, abc.
        assert_eq!(descend_leaves(&trie, &text, &sorted, b"ab").len(), 3);
        // "a" is a prefix of a, ab, ab, abc.
        assert_eq!(descend_leaves(&trie, &text, &sorted, b"a").len(), 4);
        assert_eq!(descend_leaves(&trie, &text, &sorted, b"b").len(), 1);
        assert_eq!(descend_leaves(&trie, &text, &sorted, b"").len(), 5);
        assert!(descend_leaves(&trie, &text, &sorted, b"abd").is_empty());
    }

    #[test]
    fn randomised_against_bruteforce() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..30 {
            let count = rng.gen_range(1..40usize);
            let strings: Vec<Vec<u8>> = (0..count)
                .map(|_| {
                    let len = rng.gen_range(1..12usize);
                    (0..len).map(|_| rng.gen_range(0..3u8)).collect()
                })
                .collect();
            let refs: Vec<&[u8]> = strings.iter().map(|s| s.as_slice()).collect();
            let (trie, text, sorted) = build_from_strings(&refs);
            for _ in 0..30 {
                let len = rng.gen_range(0..6usize);
                let pattern: Vec<u8> = (0..len).map(|_| rng.gen_range(0..3u8)).collect();
                let got = descend_leaves(&trie, &text, &sorted, &pattern);
                let expected: Vec<usize> = sorted
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.starts_with(&pattern[..]))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(got, expected, "pattern {pattern:?} over {sorted:?}");
            }
        }
    }

    #[test]
    fn parts_round_trip_preserves_descents() {
        let strings: Vec<&[u8]> = vec![b"banana", b"anana", b"nana", b"ana", b"na", b"a"];
        let (trie, text, sorted) = build_from_strings(&strings);
        let rebuilt = CompactedTrie::from_parts(trie.to_parts()).unwrap();
        assert_eq!(rebuilt.num_nodes(), trie.num_nodes());
        assert_eq!(rebuilt.num_leaves(), trie.num_leaves());
        for pattern in [&b"an"[..], b"na", b"banana", b"x", b""] {
            assert_eq!(
                descend_leaves(&rebuilt, &text, &sorted, pattern),
                descend_leaves(&trie, &text, &sorted, pattern),
                "pattern {pattern:?}"
            );
        }
        // The round trip is exact.
        assert_eq!(rebuilt.to_parts(), trie.to_parts());
    }

    /// Applies `mutate` to an owned copy of one `u32` parts array.
    fn tweak(
        values: &ius_arena::ArenaVec<u32>,
        mutate: impl FnOnce(&mut Vec<u32>),
    ) -> ius_arena::ArenaVec<u32> {
        let mut v = values.to_vec();
        mutate(&mut v);
        v.into()
    }

    #[test]
    fn from_parts_rejects_corrupted_input() {
        let (trie, _, _) = build_from_strings(&[b"ab", b"ba"]);
        let good = trie.to_parts();
        let mut bad = good.clone();
        bad.root = 10_000;
        assert!(CompactedTrie::from_parts(bad).is_err());
        let mut bad = good.clone();
        bad.leaf_lo = tweak(&bad.leaf_lo, |v| {
            v.pop();
        });
        assert!(CompactedTrie::from_parts(bad).is_err());
        let mut bad = good.clone();
        bad.child_nodes = tweak(&bad.child_nodes, |v| v[0] = u32::MAX);
        assert!(CompactedTrie::from_parts(bad).is_err());
        // Leaf ranges must stay inside the string count.
        let mut bad = good.clone();
        bad.leaf_lo = tweak(&bad.leaf_lo, |v| v[0] = 1_000_000_000);
        bad.leaf_hi = tweak(&bad.leaf_hi, |v| v[0] = 1_000_000_001);
        assert!(CompactedTrie::from_parts(bad).is_err());
        let mut bad = good.clone();
        bad.leaf_hi = tweak(&bad.leaf_hi, |v| v[0] = 0);
        bad.leaf_lo = tweak(&bad.leaf_lo, |v| v[0] = 1);
        assert!(CompactedTrie::from_parts(bad).is_err());
        let mut bad = good;
        bad.children_start = tweak(&bad.children_start, |v| v[0] = u32::MAX);
        assert!(CompactedTrie::from_parts(bad).is_err());
    }

    #[test]
    fn empty_collection() {
        let labels = SliceLabels::new(b"", Vec::new());
        let trie = CompactedTrie::build(&[], &[], &labels);
        assert_eq!(trie.num_leaves(), 0);
        assert_eq!(trie.descend(b"a", &labels), None);
        assert!(trie.descend(b"", &labels).is_some());
    }

    #[test]
    fn leaf_ranges_are_consistent() {
        let strings: Vec<&[u8]> = vec![b"aa", b"ab", b"abb", b"ba", b"bb", b"bba"];
        let (trie, _text, _sorted) = build_from_strings(&strings);
        // Root covers everything.
        assert_eq!(trie.leaf_range(trie.root()), (0, 6));
        // Every node's range is contained in its parent's and children
        // partition (or at least tile) the parent range.
        for node in 0..trie.num_nodes() as u32 {
            let (lo, hi) = trie.leaf_range(node);
            assert!(lo <= hi);
            let mut covered: u32 = 0;
            for (_, child) in trie.children(node) {
                let (clo, chi) = trie.leaf_range(child);
                assert!(clo >= lo && chi <= hi);
                covered += chi - clo;
            }
            if trie.num_children(node) > 0 && !trie.is_leaf(node) {
                assert_eq!(covered, hi - lo, "children must tile node {node}");
            }
        }
    }
}
