//! Differential property tests of the three suffix-array builders: the
//! linear-time SA-IS default must agree with both the naive `O(n² log n)`
//! reference and the retained prefix-doubling builder on random and
//! degenerate inputs, and downstream consumers (LCP, LCE) must be oblivious
//! to the construction switch.

use ius_text::lcp::{lcp_array, lcp_of};
use ius_text::sa::{
    inverse_suffix_array, suffix_array, suffix_array_naive, suffix_array_prefix_doubling,
};
use proptest::prelude::*;

fn assert_all_builders_agree(text: &[u8], label: &str) {
    let expected = suffix_array_naive(text);
    assert_eq!(suffix_array(text), expected, "SA-IS vs naive on {label}");
    assert_eq!(
        suffix_array_prefix_doubling(text),
        expected,
        "prefix doubling vs naive on {label}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SA-IS ≡ naive ≡ prefix doubling on arbitrary texts over alphabets of
    /// 1 to 8 letters.
    #[test]
    fn random_texts(sigma in 1u8..=8, text in prop::collection::vec(0u8..=254, 0..300)) {
        let text: Vec<u8> = text.into_iter().map(|c| c % sigma).collect();
        assert_all_builders_agree(&text, "random text");
    }

    /// Periodic texts (short repeated motifs) exercise the LMS recursion.
    #[test]
    fn periodic_texts(
        motif in prop::collection::vec(0u8..4, 1..7),
        repeats in 1usize..80,
        tail in prop::collection::vec(0u8..4, 0..6),
    ) {
        let mut text = Vec::with_capacity(motif.len() * repeats + tail.len());
        for _ in 0..repeats {
            text.extend_from_slice(&motif);
        }
        text.extend_from_slice(&tail);
        assert_all_builders_agree(&text, "periodic text");
    }

    /// The inverse permutation property holds for SA-IS output.
    #[test]
    fn inverse_roundtrip(text in prop::collection::vec(0u8..5, 1..400)) {
        let sa = suffix_array(&text);
        let rank = inverse_suffix_array(&sa);
        for (r, &p) in sa.iter().enumerate() {
            prop_assert_eq!(rank[p as usize] as usize, r);
        }
    }

    /// Kasai's LCP over the SA-IS array matches direct prefix comparison —
    /// the downstream consumers see the same contract as before the switch.
    #[test]
    fn lcp_consumes_sais_unchanged(text in prop::collection::vec(0u8..3, 2..200)) {
        let sa = suffix_array(&text);
        let lcp = lcp_array(&text, &sa);
        prop_assert_eq!(lcp[0], 0);
        for r in 1..sa.len() {
            let direct = lcp_of(&text[sa[r - 1] as usize..], &text[sa[r] as usize..]);
            prop_assert_eq!(lcp[r], direct as u32, "rank {}", r);
        }
    }
}

#[test]
fn degenerate_inputs() {
    // Empty, single letters, all-equal runs of several lengths.
    assert_all_builders_agree(b"", "empty");
    for sigma in 1u8..4 {
        for len in [1usize, 2, 3, 5, 64, 255, 256, 257] {
            let text = vec![sigma - 1; len];
            assert_all_builders_agree(&text, "all-equal");
        }
    }
    // Strictly increasing and strictly decreasing ramps (all-S / all-L).
    let up: Vec<u8> = (0..=255u8).collect();
    let down: Vec<u8> = (0..=255u8).rev().collect();
    assert_all_builders_agree(&up, "increasing ramp");
    assert_all_builders_agree(&down, "decreasing ramp");
    // Alternating two-letter text (every odd position is LMS).
    let alt: Vec<u8> = (0..501).map(|i| (i % 2) as u8).collect();
    assert_all_builders_agree(&alt, "alternating");
}

#[test]
fn large_random_text_cross_check() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0x5A15);
    for sigma in [2usize, 4, 16, 91] {
        let text: Vec<u8> = (0..20_000).map(|_| rng.gen_range(0..sigma as u8)).collect();
        assert_eq!(
            suffix_array(&text),
            suffix_array_prefix_doubling(&text),
            "sigma = {sigma}"
        );
    }
}
