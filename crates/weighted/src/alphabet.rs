//! Alphabets: compact mappings between user-facing symbols and dense ranks.
//!
//! All algorithms in the workspace operate on dense letter *ranks*
//! `0..σ` (`u8`); the [`Alphabet`] remembers which user byte each rank stands
//! for so that inputs and outputs can be translated back and forth.

use crate::error::{Error, Result};

/// Maximum supported alphabet size.
///
/// Ranks are stored in a `u8`, and the paper's datasets use `σ ≤ 91`
/// (RSSI), so 255 distinct symbols is more than enough.
pub const MAX_ALPHABET_SIZE: usize = 255;

/// A fixed, ordered alphabet of byte symbols.
///
/// The order in which symbols are supplied defines the rank order used by all
/// lexicographic comparisons (suffix arrays, minimizer orders, …).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Alphabet {
    symbols: Vec<u8>,
    /// `rank_of[b]` is `Some(rank)` if byte `b` is in the alphabet.
    rank_of: Vec<Option<u8>>,
}

impl Alphabet {
    /// Creates an alphabet from an ordered list of distinct byte symbols.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAlphabet`] if the list is empty, longer than
    /// [`MAX_ALPHABET_SIZE`], or contains duplicates.
    pub fn new(symbols: &[u8]) -> Result<Self> {
        if symbols.is_empty() {
            return Err(Error::InvalidAlphabet("alphabet is empty".into()));
        }
        if symbols.len() > MAX_ALPHABET_SIZE {
            return Err(Error::InvalidAlphabet(format!(
                "alphabet has {} symbols, maximum is {MAX_ALPHABET_SIZE}",
                symbols.len()
            )));
        }
        let mut rank_of = vec![None; 256];
        for (rank, &sym) in symbols.iter().enumerate() {
            if rank_of[sym as usize].is_some() {
                return Err(Error::InvalidAlphabet(format!(
                    "duplicate symbol {:?} in alphabet",
                    sym as char
                )));
            }
            rank_of[sym as usize] = Some(rank as u8);
        }
        Ok(Self {
            symbols: symbols.to_vec(),
            rank_of,
        })
    }

    /// The standard DNA alphabet `{A, C, G, T}` (σ = 4).
    pub fn dna() -> Self {
        Self::new(b"ACGT").expect("DNA alphabet is valid")
    }

    /// An integer alphabet `{0, 1, …, sigma-1}` stored as raw byte values.
    ///
    /// This is the natural choice for discretised sensor measurements such as
    /// the RSSI dataset of the paper (σ = 91).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAlphabet`] if `sigma` is zero or exceeds
    /// [`MAX_ALPHABET_SIZE`].
    pub fn integer(sigma: usize) -> Result<Self> {
        if sigma == 0 || sigma > MAX_ALPHABET_SIZE {
            return Err(Error::InvalidAlphabet(format!(
                "integer alphabet size {sigma} out of range 1..={MAX_ALPHABET_SIZE}"
            )));
        }
        let symbols: Vec<u8> = (0..sigma as u8).collect();
        Self::new(&symbols)
    }

    /// Number of symbols σ.
    #[inline]
    pub fn size(&self) -> usize {
        self.symbols.len()
    }

    /// The rank (dense id in `0..σ`) of byte `symbol`, if present.
    #[inline]
    pub fn rank(&self, symbol: u8) -> Option<u8> {
        self.rank_of[symbol as usize]
    }

    /// The rank of `symbol`, or an [`Error::UnknownSymbol`] otherwise.
    #[inline]
    pub fn rank_checked(&self, symbol: u8) -> Result<u8> {
        self.rank(symbol).ok_or(Error::UnknownSymbol(symbol))
    }

    /// The user byte corresponding to rank `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= σ`.
    #[inline]
    pub fn symbol(&self, rank: u8) -> u8 {
        self.symbols[rank as usize]
    }

    /// All symbols in rank order.
    #[inline]
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// Encodes a byte string into ranks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownSymbol`] on the first byte not in the alphabet.
    pub fn encode(&self, text: &[u8]) -> Result<Vec<u8>> {
        text.iter().map(|&b| self.rank_checked(b)).collect()
    }

    /// Decodes a rank string back into user bytes.
    ///
    /// # Panics
    ///
    /// Panics if any rank is `>= σ`.
    pub fn decode(&self, ranks: &[u8]) -> Vec<u8> {
        ranks.iter().map(|&r| self.symbol(r)).collect()
    }

    /// Returns `true` if every byte of `text` belongs to the alphabet.
    pub fn accepts(&self, text: &[u8]) -> bool {
        text.iter().all(|&b| self.rank(b).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_alphabet_roundtrip() {
        let a = Alphabet::dna();
        assert_eq!(a.size(), 4);
        assert_eq!(a.rank(b'A'), Some(0));
        assert_eq!(a.rank(b'C'), Some(1));
        assert_eq!(a.rank(b'G'), Some(2));
        assert_eq!(a.rank(b'T'), Some(3));
        assert_eq!(a.rank(b'N'), None);
        let encoded = a.encode(b"GATTACA").unwrap();
        assert_eq!(encoded, vec![2, 0, 3, 3, 0, 1, 0]);
        assert_eq!(a.decode(&encoded), b"GATTACA");
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert!(matches!(Alphabet::new(b""), Err(Error::InvalidAlphabet(_))));
        assert!(matches!(
            Alphabet::new(b"AA"),
            Err(Error::InvalidAlphabet(_))
        ));
        assert!(Alphabet::new(b"AB").is_ok());
    }

    #[test]
    fn integer_alphabet() {
        let a = Alphabet::integer(91).unwrap();
        assert_eq!(a.size(), 91);
        assert_eq!(a.rank(90), Some(90));
        assert_eq!(a.rank(91), None);
        assert!(Alphabet::integer(0).is_err());
        assert!(Alphabet::integer(256).is_err());
        assert!(Alphabet::integer(255).is_ok());
    }

    #[test]
    fn encode_unknown_symbol_errors() {
        let a = Alphabet::dna();
        assert_eq!(a.encode(b"ACGN"), Err(Error::UnknownSymbol(b'N')));
        assert!(!a.accepts(b"ACGN"));
        assert!(a.accepts(b"ACGT"));
    }

    #[test]
    fn rank_order_follows_declaration_order() {
        let a = Alphabet::new(b"TGCA").unwrap();
        assert_eq!(a.rank(b'T'), Some(0));
        assert_eq!(a.rank(b'A'), Some(3));
        assert_eq!(a.symbol(0), b'T');
    }
}
