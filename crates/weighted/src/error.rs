//! Error types shared by the weighted-string model.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building or querying weighted strings and the
/// structures derived from them.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The alphabet is empty, too large, or contains duplicate symbols.
    InvalidAlphabet(String),
    /// A symbol that is not part of the alphabet was encountered.
    UnknownSymbol(u8),
    /// A per-position probability distribution is malformed (wrong arity,
    /// negative entries, or does not sum to 1 within tolerance).
    InvalidDistribution {
        /// 0-based position of the offending distribution.
        position: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The weight threshold `1/z` is invalid (`z` must satisfy `z ≥ 1`).
    InvalidThreshold(f64),
    /// A query position lies outside the string.
    PositionOutOfBounds {
        /// Requested 0-based position.
        position: usize,
        /// Length of the string.
        length: usize,
    },
    /// An empty pattern (or empty input string) was supplied where a
    /// non-empty one is required.
    EmptyInput(&'static str),
    /// A property array is malformed (non-monotone or out of range).
    InvalidProperty(String),
    /// The queried pattern is shorter than the index lower bound `ℓ`.
    PatternTooShort {
        /// Length of the supplied pattern.
        pattern: usize,
        /// Lower bound `ℓ` the index was built for.
        lower_bound: usize,
    },
    /// The queried pattern is longer than the sharded index's configured
    /// maximum pattern length (the shard overlap only covers occurrences up
    /// to that length).
    PatternTooLong {
        /// Length of the supplied pattern.
        pattern: usize,
        /// Upper bound the sharded index was built for.
        upper_bound: usize,
    },
    /// Parameters passed to a builder are inconsistent.
    InvalidParameters(String),
    /// A durability I/O operation (write-ahead logging, checkpointing)
    /// failed; the message carries the underlying `io::Error`. The
    /// mutation that triggered it was **not** applied.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidAlphabet(reason) => write!(f, "invalid alphabet: {reason}"),
            Error::UnknownSymbol(sym) => {
                write!(f, "symbol {:?} (0x{sym:02x}) is not in the alphabet", *sym as char)
            }
            Error::InvalidDistribution { position, reason } => {
                write!(f, "invalid probability distribution at position {position}: {reason}")
            }
            Error::InvalidThreshold(z) => {
                write!(f, "invalid weight threshold 1/z: z = {z} (z must be >= 1 and finite)")
            }
            Error::PositionOutOfBounds { position, length } => {
                write!(f, "position {position} out of bounds for string of length {length}")
            }
            Error::EmptyInput(what) => write!(f, "{what} must be non-empty"),
            Error::InvalidProperty(reason) => write!(f, "invalid property array: {reason}"),
            Error::PatternTooShort { pattern, lower_bound } => write!(
                f,
                "pattern of length {pattern} is shorter than the index lower bound ℓ = {lower_bound}"
            ),
            Error::PatternTooLong { pattern, upper_bound } => write!(
                f,
                "pattern of length {pattern} exceeds the sharded index's maximum supported \
                 pattern length {upper_bound}"
            ),
            Error::InvalidParameters(reason) => write!(f, "invalid parameters: {reason}"),
            Error::Io(reason) => write!(f, "durability I/O error: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::UnknownSymbol(b'Z');
        assert!(e.to_string().contains('Z'));
        let e = Error::PositionOutOfBounds {
            position: 7,
            length: 3,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains('3'));
        let e = Error::PatternTooShort {
            pattern: 3,
            lower_bound: 8,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('8'));
        let e = Error::PatternTooLong {
            pattern: 90,
            upper_bound: 64,
        };
        assert!(e.to_string().contains("90") && e.to_string().contains("64"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
