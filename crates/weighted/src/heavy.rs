//! Heavy strings (Definition 2 of the paper) and prefix products.
//!
//! The *heavy string* `H_X` of a weighted string `X` keeps, at every position,
//! a letter with the largest probability. Lemma 3 of the paper (due to
//! Kociumaka, Pissis and Radoszewski) states that any z-solid factor differs
//! from the corresponding fragment of `H_X` in at most `log₂ z` positions —
//! the combinatorial fact behind the `O(log z)` edge encoding of the
//! minimizer solid factor trees.

use crate::error::{Error, Result};
use crate::string::WeightedString;
use ius_arena::ArenaVec;
use std::sync::Arc;

/// The heavy string of a weighted string, together with prefix products of
/// its letter probabilities.
///
/// The prefix products are kept in log-space so that arbitrarily long ranges
/// can be multiplied without underflow; see [`HeavyString::range_probability`].
///
/// The letter ranks live behind an [`Arc`] so that consumers needing their
/// own handle on the heavy text (most prominently the encoded factor sets,
/// whose forward heavy view *is* this string) share the allocation instead
/// of cloning `n` bytes per consumer; see [`HeavyString::shared_ranks`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HeavyString {
    /// Heavy letters as dense ranks, one per position (shared).
    letters: Arc<Vec<u8>>,
    /// `log_prefix[i]` = Σ_{j < i} ln p_j(H_X[j]); length `n + 1`. An
    /// [`ArenaVec`], so a persisted heavy string can borrow the table
    /// zero-copy from the index arena.
    log_prefix: ArenaVec<f64>,
}

impl HeavyString {
    /// Computes a heavy string of `x`.
    ///
    /// Ties are broken in favour of the letter with the smallest rank, which
    /// makes the result deterministic (the paper allows arbitrary
    /// tie-breaking).
    pub fn new(x: &WeightedString) -> Self {
        let n = x.len();
        let mut letters = Vec::with_capacity(n);
        let mut log_prefix = Vec::with_capacity(n + 1);
        log_prefix.push(0.0);
        for i in 0..n {
            let dist = x.distribution(i);
            let mut best = 0usize;
            let mut best_p = dist[0];
            for (c, &p) in dist.iter().enumerate().skip(1) {
                if p > best_p {
                    best_p = p;
                    best = c;
                }
            }
            letters.push(best as u8);
            log_prefix.push(log_prefix[i] + best_p.ln());
        }
        Self {
            letters: Arc::new(letters),
            log_prefix: ArenaVec::from(log_prefix),
        }
    }

    /// Length of the heavy string (equals the length of `X`).
    #[inline]
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// `true` iff the heavy string is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// The heavy letter (rank) at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= n`.
    #[inline]
    pub fn letter(&self, pos: usize) -> u8 {
        self.letters[pos]
    }

    /// The heavy string as a rank slice.
    #[inline]
    pub fn as_ranks(&self) -> &[u8] {
        &self.letters
    }

    /// A shared handle on the rank vector — the clone-free way to hand the
    /// heavy text to another owner (no bytes are copied).
    #[inline]
    pub fn shared_ranks(&self) -> Arc<Vec<u8>> {
        Arc::clone(&self.letters)
    }

    /// Probability of the heavy fragment `H_X[start..end]` (half-open range),
    /// i.e. `Π_{i ∈ [start, end)} p_i(H_X[i])`.
    ///
    /// # Errors
    ///
    /// [`Error::PositionOutOfBounds`] if `end > n` or `start > end`.
    pub fn range_probability(&self, start: usize, end: usize) -> Result<f64> {
        if end > self.len() || start > end {
            return Err(Error::PositionOutOfBounds {
                position: end,
                length: self.len(),
            });
        }
        Ok((self.log_prefix[end] - self.log_prefix[start]).exp())
    }

    /// Log-probability of the heavy fragment `H_X[start..end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[inline]
    pub fn range_log_probability(&self, start: usize, end: usize) -> f64 {
        self.log_prefix[end] - self.log_prefix[start]
    }

    /// Number of mismatches between a rank-encoded fragment `fragment` and the
    /// heavy string aligned at `start` (Hamming distance of Lemma 3).
    ///
    /// Positions extending past the end of the heavy string count as
    /// mismatches.
    pub fn mismatches(&self, start: usize, fragment: &[u8]) -> usize {
        fragment
            .iter()
            .enumerate()
            .filter(|(off, &c)| {
                self.letters
                    .get(start + off)
                    .map(|&h| h != c)
                    .unwrap_or(true)
            })
            .count()
    }

    /// Positions (absolute, 0-based) where `fragment` aligned at `start`
    /// differs from the heavy string.
    pub fn mismatch_positions(&self, start: usize, fragment: &[u8]) -> Vec<usize> {
        fragment
            .iter()
            .enumerate()
            .filter(|(off, &c)| {
                self.letters
                    .get(start + off)
                    .map(|&h| h != c)
                    .unwrap_or(true)
            })
            .map(|(off, _)| start + off)
            .collect()
    }

    /// The stored log-prefix products (`n + 1` entries; entry `i` is
    /// `Σ_{j < i} ln p_j(H_X[j])`), exposed for the persistence layer.
    #[inline]
    pub fn log_prefix(&self) -> &[f64] {
        &self.log_prefix
    }

    /// Reassembles a heavy string from its stored parts (letters and
    /// log-prefix products) without recomputing either — the persistence
    /// layer's constructor.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameters`] unless `log_prefix` has exactly
    /// `letters.len() + 1` finite entries starting at 0.
    pub fn from_parts(letters: Vec<u8>, log_prefix: ArenaVec<f64>) -> Result<Self> {
        if log_prefix.len() != letters.len() + 1 {
            return Err(Error::InvalidParameters(format!(
                "log-prefix table has {} entries for {} letters",
                log_prefix.len(),
                letters.len()
            )));
        }
        if log_prefix.first() != Some(&0.0) || log_prefix.iter().any(|v| !v.is_finite()) {
            return Err(Error::InvalidParameters(
                "log-prefix table must start at 0 and stay finite".into(),
            ));
        }
        Ok(Self {
            letters: Arc::new(letters),
            log_prefix,
        })
    }

    /// Approximate heap usage in bytes. An arena-backed log-prefix table
    /// counts as zero here; the arena is counted once by whoever retains
    /// its handle.
    pub fn memory_bytes(&self) -> usize {
        self.letters.capacity() + self.log_prefix.heap_bytes()
    }
}

/// The maximum number of mismatches a z-solid factor can have with the heavy
/// string: `⌊log₂ z⌋` (Lemma 3 of the paper).
#[inline]
pub fn max_solid_mismatches(z: f64) -> usize {
    if z < 1.0 {
        0
    } else {
        z.log2().floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::string::paper_example;
    use crate::Alphabet;

    #[test]
    fn heavy_string_of_paper_example() {
        // Example 5: H_X = ABAAAB up to tie-breaking at positions 2 and 5
        // (1-based). Our tie-break picks the smaller rank, i.e. A at both,
        // giving AAAAAB; both are valid heavy strings.
        let x = paper_example();
        let h = HeavyString::new(&x);
        let decoded = x.alphabet().decode(h.as_ranks());
        assert_eq!(decoded, b"AAAAAB");
        // Probabilities of the chosen letters.
        assert!((h.range_probability(0, 1).unwrap() - 1.0).abs() < 1e-12);
        assert!((h.range_probability(0, 2).unwrap() - 0.5).abs() < 1e-12);
        assert!((h.range_probability(2, 4).unwrap() - 0.6).abs() < 1e-12);
        assert!(
            (h.range_probability(0, 6).unwrap() - 1.0 * 0.5 * 0.75 * 0.8 * 0.5 * 0.75).abs() < 1e-9
        );
    }

    #[test]
    fn range_probability_bounds() {
        let x = paper_example();
        let h = HeavyString::new(&x);
        assert!(h.range_probability(0, 7).is_err());
        assert!(h.range_probability(4, 3).is_err());
        assert_eq!(h.range_probability(3, 3).unwrap(), 1.0);
    }

    #[test]
    fn mismatches_and_positions() {
        let x = paper_example();
        let h = HeavyString::new(&x);
        let a = x.alphabet();
        // Heavy = AAAAAB; fragment BABA at position 0 differs at 0 and 2.
        let frag = a.encode(b"BABA").unwrap();
        assert_eq!(h.mismatches(0, &frag), 2);
        assert_eq!(h.mismatch_positions(0, &frag), vec![0, 2]);
        // Fragment running past the end counts overhang as mismatches.
        let frag = a.encode(b"AB").unwrap();
        assert_eq!(h.mismatches(5, &frag), 2);
    }

    #[test]
    fn lemma3_bound_examples() {
        assert_eq!(max_solid_mismatches(1.0), 0);
        assert_eq!(max_solid_mismatches(2.0), 1);
        assert_eq!(max_solid_mismatches(4.0), 2);
        assert_eq!(max_solid_mismatches(128.0), 7);
        assert_eq!(max_solid_mismatches(1024.0), 10);
        assert_eq!(max_solid_mismatches(0.5), 0);
    }

    #[test]
    fn lemma3_holds_on_paper_example() {
        // Example 6: for z = 4 no solid factor has more than log2(4) = 2
        // mismatches with the heavy string at its occurrence position.
        let x = paper_example();
        let h = HeavyString::new(&x);
        let z = 4.0;
        let a = x.alphabet().clone();
        // Enumerate all factors of length up to 6 and check the bound.
        for start in 0..x.len() {
            let mut stack: Vec<Vec<u8>> = vec![vec![]];
            while let Some(prefix) = stack.pop() {
                for c in 0..a.size() as u8 {
                    let mut f = prefix.clone();
                    f.push(c);
                    if start + f.len() > x.len() {
                        continue;
                    }
                    let p = x.occurrence_probability(start, &f);
                    if crate::is_solid(p, z) {
                        assert!(
                            h.mismatches(start, &f) <= max_solid_mismatches(z),
                            "solid factor with too many mismatches"
                        );
                        stack.push(f);
                    }
                }
            }
        }
    }

    #[test]
    fn parts_round_trip_is_exact() {
        let x = paper_example();
        let h = HeavyString::new(&x);
        let rebuilt =
            HeavyString::from_parts(h.as_ranks().to_vec(), h.log_prefix().to_vec().into()).unwrap();
        assert_eq!(rebuilt.as_ranks(), h.as_ranks());
        assert_eq!(rebuilt.log_prefix(), h.log_prefix());
        assert_eq!(
            rebuilt.range_log_probability(1, 5).to_bits(),
            h.range_log_probability(1, 5).to_bits()
        );
        // Malformed parts are rejected.
        assert!(HeavyString::from_parts(vec![0, 1], vec![0.0, 0.5].into()).is_err());
        assert!(HeavyString::from_parts(vec![0], vec![0.1, 0.2].into()).is_err());
        assert!(HeavyString::from_parts(vec![0], vec![0.0, f64::NAN].into()).is_err());
    }

    #[test]
    fn long_range_probability_does_not_underflow_to_zero_prematurely() {
        // 10_000 positions with heavy probability 0.999 each.
        let alphabet = Alphabet::new(b"AB").unwrap();
        let rows: Vec<Vec<f64>> = (0..10_000).map(|_| vec![0.999, 0.001]).collect();
        let x = WeightedString::from_rows(alphabet, &rows).unwrap();
        let h = HeavyString::new(&x);
        let p = h.range_probability(0, 10_000).unwrap();
        assert!(p > 0.0);
        assert!((p.ln() - 10_000.0 * 0.999f64.ln()).abs() < 1e-6);
    }
}
