//! # ius-weighted — the uncertain (weighted) string model
//!
//! This crate implements the *character-level uncertainty model* used by
//! "Space-Efficient Indexes for Uncertain Strings" (ICDE 2024): an uncertain
//! string (also called a *weighted string*) `X` of length `n` over an alphabet
//! `Σ` is a sequence of `n` probability distributions over `Σ`.
//!
//! It provides every weighted-string substrate the indexes in `ius-index`
//! build upon:
//!
//! * [`Alphabet`] — compact mapping between user symbols (bytes) and dense
//!   ranks `0..σ`;
//! * [`WeightedString`] — the `σ × n` probability matrix with occurrence
//!   probability queries;
//! * [`HeavyString`] — the string of per-position most likely letters together
//!   with prefix products, used for the `O(log z)` edge encoding (Lemma 3 /
//!   Corollary 4 of the paper);
//! * solid factor machinery ([`solid`]) — validity checks, naive reference
//!   pattern matching and maximal solid factor enumeration;
//! * [`PropertyString`] — a standard string equipped with a hereditary
//!   property array `π` (Property Indexing);
//! * [`ZEstimation`] — the family of `⌊z⌋` property strings of Barton et al.
//!   (Theorem 2), i.e. the bridge from uncertain strings to standard ones.
//!
//! Positions are **0-based** throughout the crate (the paper uses 1-based
//! positions); intervals are inclusive `[start, end]` unless stated otherwise.
//!
//! ## Quick example
//!
//! ```
//! use ius_weighted::{Alphabet, WeightedString, ZEstimation};
//!
//! // The running example of the paper (Example 1): n = 6, Σ = {A, B}.
//! let alphabet = Alphabet::new(b"AB").unwrap();
//! let x = WeightedString::from_rows(
//!     alphabet,
//!     &[
//!         vec![1.0, 0.0],
//!         vec![0.5, 0.5],
//!         vec![0.75, 0.25],
//!         vec![0.8, 0.2],
//!         vec![0.5, 0.5],
//!         vec![0.25, 0.75],
//!     ],
//! )
//! .unwrap();
//!
//! // Occurrence probability of P = ABA at position 2 (0-based), cf. Example 1.
//! let p = x.occurrence_probability_bytes(2, b"ABA").unwrap();
//! assert!((p - 0.075).abs() < 1e-12);
//!
//! // A 4-estimation (Table 1): 4 property strings that jointly "count" every
//! // factor with multiplicity ⌊p·z⌋.
//! let est = ZEstimation::build(&x, 4.0).unwrap();
//! assert_eq!(est.num_strands(), 4);
//! assert_eq!(est.count_bytes(b"AB", 0).unwrap(), 2); // p = 1/2 → ⌊2⌋ = 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod error;
pub mod heavy;
pub mod property;
pub mod solid;
pub mod string;
pub mod zestimation;

pub use alphabet::Alphabet;
pub use error::{Error, Result};
pub use heavy::HeavyString;
pub use property::PropertyString;
pub use solid::{MaximalSolidFactor, SolidFactorSet};
pub use string::WeightedString;
pub use zestimation::ZEstimation;

/// Numerical slack used when comparing floating-point occurrence
/// probabilities against the `1/z` threshold and when taking floors of `p·z`.
///
/// All crates in the workspace use this single constant so that the reference
/// matcher, the z-estimation and every index agree on borderline factors.
pub const PROB_EPSILON: f64 = 1e-9;

/// `⌊p·z⌋` computed with the shared [`PROB_EPSILON`] slack.
///
/// This is the multiplicity with which a factor of occurrence probability `p`
/// must appear in a z-estimation (Definition of z-estimation in the paper).
#[inline]
pub fn solid_multiplicity(p: f64, z: f64) -> u64 {
    if p <= 0.0 {
        return 0;
    }
    let scaled = p * z + PROB_EPSILON;
    if scaled < 1.0 {
        0
    } else {
        scaled.floor() as u64
    }
}

/// Returns `true` iff a factor with occurrence probability `p` is *z-solid*
/// (also called *z-valid*), i.e. `p ≥ 1/z`, using the shared epsilon.
#[inline]
pub fn is_solid(p: f64, z: f64) -> bool {
    solid_multiplicity(p, z) >= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicity_basics() {
        assert_eq!(solid_multiplicity(0.5, 4.0), 2);
        assert_eq!(solid_multiplicity(0.3, 4.0), 1);
        assert_eq!(solid_multiplicity(0.075, 4.0), 0);
        assert_eq!(solid_multiplicity(0.0, 4.0), 0);
        assert_eq!(solid_multiplicity(1.0, 1.0), 1);
        assert_eq!(solid_multiplicity(1.0, 128.0), 128);
    }

    #[test]
    fn multiplicity_boundary_uses_epsilon() {
        // 0.25 * 4 = 1.0 exactly: must count as solid.
        assert_eq!(solid_multiplicity(0.25, 4.0), 1);
        // A value infinitesimally below the boundary (beyond epsilon) does not.
        assert_eq!(solid_multiplicity(0.25 - 1e-6, 4.0), 0);
        assert!(is_solid(0.25, 4.0));
        assert!(!is_solid(0.2499, 4.0));
    }

    #[test]
    fn multiplicity_is_monotone_in_p() {
        let z = 17.0;
        let mut last = 0;
        for i in 0..=1000 {
            let p = i as f64 / 1000.0;
            let m = solid_multiplicity(p, z);
            assert!(m >= last);
            last = m;
        }
        assert_eq!(last, 17);
    }
}
