//! Property strings: standard strings equipped with a hereditary property.
//!
//! A *property* Π of a string `S` is a hereditary collection of integer
//! intervals of `[0, n)`. Following the paper we represent Π with an array
//! `π` such that the longest interval starting at position `i` is
//! `[i, π[i]]`. Internally we store the *exclusive* end `extent[i] = π[i]+1`,
//! so `extent[i] == i` means that position `i` is not covered by any interval.
//!
//! Property strings are the building blocks of z-estimations: each strand of
//! a z-estimation is a [`PropertyString`] whose property intervals are exactly
//! the (occurrences of) solid factors the strand is responsible for.

use crate::error::{Error, Result};
use crate::string::WeightedString;
use crate::{is_solid, PROB_EPSILON};

/// A standard string (of letter ranks) together with a property array.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PropertyString {
    seq: Vec<u8>,
    /// Exclusive end of the longest property interval starting at each
    /// position; `extent[i] ∈ [i, n]`.
    extent: Vec<u32>,
}

impl PropertyString {
    /// Creates a property string from a rank sequence and exclusive extents.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidProperty`] if lengths differ, an extent is out of
    /// range, or the (inclusive) property array is not non-decreasing.
    pub fn new(seq: Vec<u8>, extent: Vec<u32>) -> Result<Self> {
        if seq.len() != extent.len() {
            return Err(Error::InvalidProperty(format!(
                "sequence has length {} but extent array has length {}",
                seq.len(),
                extent.len()
            )));
        }
        let n = seq.len() as u32;
        let mut prev = 0u32;
        for (i, &e) in extent.iter().enumerate() {
            let i = i as u32;
            if e < i || e > n {
                return Err(Error::InvalidProperty(format!(
                    "extent[{i}] = {e} outside [{i}, {n}]"
                )));
            }
            // A hereditary property is closed under subintervals, hence the
            // inclusive π array is non-decreasing (π[i-1] ≤ π[i]), which in
            // terms of exclusive extents is plain monotonicity.
            if e < prev {
                return Err(Error::InvalidProperty(format!(
                    "property array not hereditary/monotone at position {i}: extent {e} < previous {prev}"
                )));
            }
            prev = e;
        }
        Ok(Self { seq, extent })
    }

    /// Creates a property string whose property covers the whole string
    /// (every interval is allowed). This makes the property string behave
    /// like an ordinary string.
    pub fn unrestricted(seq: Vec<u8>) -> Self {
        let n = seq.len() as u32;
        let extent = vec![n; seq.len()];
        Self { seq, extent }
    }

    /// Length of the underlying string.
    #[inline]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// `true` iff the underlying string is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// The underlying rank sequence.
    #[inline]
    pub fn seq(&self) -> &[u8] {
        &self.seq
    }

    /// The letter rank at `pos`.
    #[inline]
    pub fn letter(&self, pos: usize) -> u8 {
        self.seq[pos]
    }

    /// Exclusive end of the longest property interval starting at `pos`.
    #[inline]
    pub fn extent(&self, pos: usize) -> usize {
        self.extent[pos] as usize
    }

    /// Exclusive extents for all positions.
    #[inline]
    pub fn extents(&self) -> &[u32] {
        &self.extent
    }

    /// Inclusive `π[pos]` as in the paper, or `None` when position `pos` is
    /// not covered by any property interval (`π[pos] = pos - 1`).
    #[inline]
    pub fn pi(&self, pos: usize) -> Option<usize> {
        let e = self.extent[pos] as usize;
        if e == pos {
            None
        } else {
            Some(e - 1)
        }
    }

    /// Returns `true` iff position `pos` is covered by some property interval.
    #[inline]
    pub fn covered(&self, pos: usize) -> bool {
        (self.extent[pos] as usize) > pos
    }

    /// The longest property-respecting factor starting at `pos`.
    #[inline]
    pub fn factor_at(&self, pos: usize) -> &[u8] {
        &self.seq[pos..self.extent[pos] as usize]
    }

    /// Does `pattern` occur at `pos` respecting the property?
    pub fn occurs_at(&self, pattern: &[u8], pos: usize) -> bool {
        if pattern.is_empty() {
            return true;
        }
        let end = pos + pattern.len();
        end <= self.extent[pos] as usize && &self.seq[pos..end] == pattern
    }

    /// All positions where `pattern` occurs respecting the property
    /// (`Occ_π(P, S)` in the paper), by a naive scan.
    pub fn occurrences(&self, pattern: &[u8]) -> Vec<usize> {
        if pattern.is_empty() || pattern.len() > self.seq.len() {
            return Vec::new();
        }
        (0..=self.seq.len() - pattern.len())
            .filter(|&i| self.occurs_at(pattern, i))
            .collect()
    }

    /// Total number of positions covered by the property (sum of lengths of
    /// the maximal intervals starting at each position is *not* what the
    /// paper reports; this is the count of positions `i` with `π[i] ≥ i`).
    pub fn covered_positions(&self) -> usize {
        (0..self.len()).filter(|&i| self.covered(i)).count()
    }

    /// Verifies the *soundness* of this property string against a weighted
    /// string: every property-respecting factor must be a z-solid factor of
    /// `x` at the same position.
    ///
    /// Because solidity is hereditary it suffices to check the maximal factor
    /// at each position.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidProperty`] naming the first offending position.
    pub fn verify_sound(&self, x: &WeightedString, z: f64) -> Result<()> {
        if self.len() != x.len() {
            return Err(Error::InvalidProperty(format!(
                "property string has length {} but X has length {}",
                self.len(),
                x.len()
            )));
        }
        for i in 0..self.len() {
            if !self.covered(i) {
                continue;
            }
            let factor = self.factor_at(i);
            let p = x.occurrence_probability(i, factor);
            if !is_solid(p, z) {
                return Err(Error::InvalidProperty(format!(
                    "factor of length {} at position {i} has probability {p:.6e} < 1/z (z = {z})",
                    factor.len()
                )));
            }
        }
        Ok(())
    }

    /// Approximate heap usage in bytes (sequence + extent array).
    pub fn memory_bytes(&self) -> usize {
        self.seq.capacity() + self.extent.capacity() * std::mem::size_of::<u32>()
    }
}

/// Builds the property string of *maximal solid factors* of `x`, i.e. the
/// property suffix-array-style pair `(S, π)` where `S` is an arbitrary string
/// containing the solid factors of one strand.
///
/// This helper derives, for a given strand string `seq`, the maximal sound
/// property with respect to `x` and `z`: `extent[i]` is the largest `e` such
/// that `seq[i..e]` is z-solid at `i` (note this is monotone because
/// solidity is hereditary).
pub fn derive_maximal_property(seq: Vec<u8>, x: &WeightedString, z: f64) -> Result<PropertyString> {
    if seq.len() != x.len() {
        return Err(Error::InvalidProperty(format!(
            "sequence has length {} but X has length {}",
            seq.len(),
            x.len()
        )));
    }
    let n = seq.len();
    let mut extent = vec![0u32; n];
    let threshold = 1.0 / z;
    // Two-pointer sweep: maintain the product of probabilities over the
    // window [i, j).
    let mut j = 0usize;
    let mut product = 1.0f64;
    for i in 0..n {
        if j < i {
            j = i;
            product = 1.0;
        }
        while j < n {
            let p = x.prob(j, seq[j]);
            if p <= 0.0 || product * p + PROB_EPSILON < threshold {
                break;
            }
            product *= p;
            j += 1;
        }
        extent[i] = j as u32;
        if j > i {
            let p = x.prob(i, seq[i]);
            product /= p;
        }
        // Guard against drift from repeated division.
        if product > 1.0 {
            product = 1.0;
        }
    }
    // Recompute products periodically to avoid floating-point drift on very
    // long strings: the two-pointer invariant is re-established lazily above,
    // which is sufficient for the tolerances used in this workspace.
    PropertyString::new(seq, extent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::string::paper_example;

    /// The pair (S2, π2) from Table 1 of the paper (0-based extents).
    fn table1_s2() -> PropertyString {
        // S2 = AAAAAB, π2 (1-based) = 4 4 5 6 6 6 → exclusive extents 4 4 5 6 6 6.
        PropertyString::new(vec![0, 0, 0, 0, 0, 1], vec![4, 4, 5, 6, 6, 6]).unwrap()
    }

    #[test]
    fn example3_occurrence() {
        // Example 3: P = AAA occurs at position 3 (1-based) = 2 (0-based) in (S2, π2).
        let s2 = table1_s2();
        assert!(s2.occurs_at(&[0, 0, 0], 2));
        assert_eq!(s2.occurrences(&[0, 0, 0]), vec![0, 1, 2]);
        // AAAA only occurs at 0 and 1 within the property... 0: end 4 ≤ 4 ✓, 1: end 5 > 4 ✗.
        assert_eq!(s2.occurrences(&[0, 0, 0, 0]), vec![0]);
    }

    #[test]
    fn example4_occ_pi() {
        // Example 4: for P = AB and S3 = ABAABB with π3 = 4 4 5 6 6 6 (1-based),
        // Occ_π(P, S3) = {1, 4} (1-based) = {0, 3} (0-based).
        let s3 = PropertyString::new(vec![0, 1, 0, 0, 1, 1], vec![4, 4, 5, 6, 6, 6]).unwrap();
        assert_eq!(s3.occurrences(&[0, 1]), vec![0, 3]);
    }

    #[test]
    fn pi_and_covered() {
        let s = PropertyString::new(vec![0, 1, 0], vec![2, 2, 2]).unwrap();
        assert_eq!(s.pi(0), Some(1));
        assert_eq!(s.pi(1), Some(1));
        assert!(s.covered(1));
        assert_eq!(s.pi(2), None);
        assert!(!s.covered(2));
        assert_eq!(s.factor_at(0), &[0, 1]);
        assert_eq!(s.factor_at(2), &[] as &[u8]);
    }

    #[test]
    fn rejects_invalid_extents() {
        // Empty extents everywhere are fine.
        assert!(PropertyString::new(vec![0, 0], vec![0, 1]).is_ok());
        // extent[i] < i.
        assert!(PropertyString::new(vec![0, 0], vec![2, 1]).is_err());
        assert!(PropertyString::new(vec![0, 0], vec![0, 0]).is_err());
        // extent > n.
        assert!(PropertyString::new(vec![0, 0], vec![3, 2]).is_err());
        // length mismatch.
        assert!(PropertyString::new(vec![0, 0], vec![2]).is_err());
        // Non-monotone hereditary representation: π = [2, 0] (extent [3, 1]).
        assert!(PropertyString::new(vec![0, 0, 0], vec![3, 1, 3]).is_err());
    }

    #[test]
    fn unrestricted_behaves_like_plain_string() {
        let s = PropertyString::unrestricted(vec![0, 1, 0, 1, 0]);
        assert_eq!(s.occurrences(&[0, 1]), vec![0, 2]);
        assert_eq!(s.occurrences(&[1, 0]), vec![1, 3]);
        assert_eq!(s.occurrences(&[]), Vec::<usize>::new());
        assert_eq!(s.covered_positions(), 5);
    }

    #[test]
    fn table1_strands_are_sound_for_z4() {
        let x = paper_example();
        let s2 = table1_s2();
        s2.verify_sound(&x, 4.0).unwrap();
        // An unsound property: claim ABAB is allowed at position 0 (prob 3/40 < 1/4).
        let bad = PropertyString::new(vec![0, 1, 0, 1, 0, 0], vec![4, 4, 5, 6, 6, 6]).unwrap();
        assert!(bad.verify_sound(&x, 4.0).is_err());
    }

    #[test]
    fn derive_maximal_property_matches_bruteforce() {
        let x = paper_example();
        let z = 4.0;
        for seq in [
            vec![0u8, 0, 0, 0, 0, 0],
            vec![0, 1, 0, 0, 1, 1],
            vec![1, 1, 1, 1, 1, 1],
        ] {
            let ps = derive_maximal_property(seq.clone(), &x, z).unwrap();
            for i in 0..x.len() {
                // Brute-force maximal extent.
                let mut best = i;
                for e in (i + 1)..=x.len() {
                    if is_solid(x.occurrence_probability(i, &seq[i..e]), z) {
                        best = e;
                    } else {
                        break;
                    }
                }
                assert_eq!(ps.extent(i), best, "position {i} of strand {seq:?}");
            }
            ps.verify_sound(&x, z).unwrap();
        }
    }

    #[test]
    fn occurrences_of_overlong_pattern_is_empty() {
        let s = PropertyString::unrestricted(vec![0, 1]);
        assert!(s.occurrences(&[0, 1, 0]).is_empty());
    }
}
