//! Solid (valid) factors of a weighted string.
//!
//! A string `U` is a *z-solid factor* of `X` at position `i` if
//! `P(X[i..i+|U|-1] = U) ≥ 1/z`. This module provides:
//!
//! * the naive reference pattern matcher ([`occurrences`]) used by every
//!   correctness test in the workspace to validate the real indexes,
//! * enumeration of (right-)maximal solid factors ([`SolidFactorSet`]),
//! * small utilities on individual factors.

use crate::error::Result;
use crate::string::WeightedString;
use crate::{is_solid, PROB_EPSILON};

/// A maximal solid factor occurrence of a weighted string.
#[derive(Debug, Clone, PartialEq)]
pub struct MaximalSolidFactor {
    /// 0-based starting position of the occurrence in `X`.
    pub start: usize,
    /// The factor itself, as letter ranks.
    pub letters: Vec<u8>,
    /// Its occurrence probability at `start`.
    pub probability: f64,
}

impl MaximalSolidFactor {
    /// Inclusive end position of the occurrence.
    #[inline]
    pub fn end(&self) -> usize {
        self.start + self.letters.len() - 1
    }

    /// Length of the factor.
    #[inline]
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// `true` iff the factor is empty (never produced by enumeration).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }
}

/// The set of maximal solid factors of a weighted string for a threshold
/// `1/z`.
#[derive(Debug, Clone)]
pub struct SolidFactorSet {
    z: f64,
    factors: Vec<MaximalSolidFactor>,
}

impl SolidFactorSet {
    /// Enumerates all *right-maximal* solid factors: solid factors that
    /// cannot be extended to the right while remaining solid. One factor is
    /// reported per (start position, trie leaf).
    ///
    /// The output has at most `⌊z⌋` factors per starting position.
    pub fn right_maximal(x: &WeightedString, z: f64) -> Self {
        let mut factors = Vec::new();
        for start in 0..x.len() {
            enumerate_from(x, z, start, &mut factors);
        }
        Self { z, factors }
    }

    /// Enumerates all *maximal* solid factors: solid factors that can be
    /// extended neither to the right nor to the left while remaining solid.
    pub fn maximal(x: &WeightedString, z: f64) -> Self {
        let right = Self::right_maximal(x, z);
        let factors = right
            .factors
            .into_iter()
            .filter(|f| {
                if f.start == 0 {
                    return true;
                }
                let best_prev = x
                    .distribution(f.start - 1)
                    .iter()
                    .cloned()
                    .fold(0.0f64, f64::max);
                !is_solid(best_prev * f.probability, z)
            })
            .collect();
        Self { z, factors }
    }

    /// The threshold denominator `z` the set was computed for.
    #[inline]
    pub fn z(&self) -> f64 {
        self.z
    }

    /// The enumerated factors.
    #[inline]
    pub fn factors(&self) -> &[MaximalSolidFactor] {
        &self.factors
    }

    /// Number of factors.
    #[inline]
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// `true` iff no factor was enumerated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// Sum of the lengths of all enumerated factors — the quantity that drives
    /// the `O(nz)` bound of the solid factor trees (Lemma 10 of the paper).
    pub fn total_length(&self) -> usize {
        self.factors.iter().map(MaximalSolidFactor::len).sum()
    }

    /// The longest factor length (0 if the set is empty).
    pub fn max_length(&self) -> usize {
        self.factors
            .iter()
            .map(MaximalSolidFactor::len)
            .max()
            .unwrap_or(0)
    }
}

/// DFS over solid right-extensions from `start`, pushing right-maximal leaves.
fn enumerate_from(x: &WeightedString, z: f64, start: usize, out: &mut Vec<MaximalSolidFactor>) {
    let threshold = 1.0 / z;
    let mut letters: Vec<u8> = Vec::new();
    // Stack of (depth, letter, probability-of-prefix-ending-with-letter).
    let mut stack: Vec<(usize, u8, f64)> = Vec::new();
    for (c, p) in x.letters_at(start) {
        if p + PROB_EPSILON >= threshold {
            stack.push((0, c, p));
        }
    }
    // If no single letter is solid at `start`, nothing starts here.
    while let Some((depth, letter, prob)) = stack.pop() {
        letters.truncate(depth);
        letters.push(letter);
        // Try to extend to the right.
        let next = start + depth + 1;
        let mut extended = false;
        if next < x.len() {
            for (c, p) in x.letters_at(next) {
                let q = prob * p;
                if q + PROB_EPSILON >= threshold {
                    stack.push((depth + 1, c, q));
                    extended = true;
                }
            }
        }
        if !extended {
            out.push(MaximalSolidFactor {
                start,
                letters: letters.clone(),
                probability: prob,
            });
        }
    }
}

/// Naive reference matcher: all 0-based positions where `pattern`
/// (rank-encoded) has a z-solid occurrence in `x`.
///
/// Runs in `O(n·m)` time and is the ground truth for every index in the
/// workspace.
pub fn occurrences(x: &WeightedString, pattern: &[u8], z: f64) -> Vec<usize> {
    if pattern.is_empty() || pattern.len() > x.len() {
        return Vec::new();
    }
    (0..=x.len() - pattern.len())
        .filter(|&i| is_solid(x.occurrence_probability(i, pattern), z))
        .collect()
}

/// Naive reference matcher over a byte pattern.
///
/// # Errors
///
/// Propagates [`crate::Error::UnknownSymbol`] from encoding the pattern.
pub fn occurrences_bytes(x: &WeightedString, pattern: &[u8], z: f64) -> Result<Vec<usize>> {
    let encoded = x.alphabet().encode(pattern)?;
    Ok(occurrences(x, &encoded, z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::string::paper_example;
    use crate::Alphabet;

    #[test]
    fn naive_matcher_on_paper_example() {
        let x = paper_example();
        // AAAA is valid at position 1 (1-based) with probability 0.3 (Example 6).
        assert_eq!(occurrences_bytes(&x, b"AAAA", 4.0).unwrap(), vec![0]);
        // ABAB is not valid at position 1 (probability 3/40).
        assert_eq!(
            occurrences_bytes(&x, b"ABAB", 4.0).unwrap(),
            Vec::<usize>::new()
        );
        // AB has probability 1/2 at position 1, 3/16 at 2 (not valid), 4/25... let's trust maths:
        // positions (0-based) where p ≥ 1/4: 0 (0.5), 3 (0.8*0.5=0.4), 4 (0.5*0.75=0.375).
        assert_eq!(occurrences_bytes(&x, b"AB", 4.0).unwrap(), vec![0, 3, 4]);
        // Single letter B: positions with p_B ≥ 1/4: 1, 2(0.25), 4, 5.
        assert_eq!(occurrences_bytes(&x, b"B", 4.0).unwrap(), vec![1, 2, 4, 5]);
    }

    #[test]
    fn empty_and_overlong_patterns() {
        let x = paper_example();
        assert!(occurrences(&x, &[], 4.0).is_empty());
        assert!(occurrences(&x, &[0; 7], 4.0).is_empty());
    }

    #[test]
    fn threshold_one_means_certain_patterns_only() {
        let x = paper_example();
        // z = 1 → only probability-1 factors. Only X[0] = A is certain.
        assert_eq!(occurrences_bytes(&x, b"A", 1.0).unwrap(), vec![0]);
        assert_eq!(
            occurrences_bytes(&x, b"AA", 1.0).unwrap(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn right_maximal_factors_of_paper_example() {
        let x = paper_example();
        let set = SolidFactorSet::right_maximal(&x, 4.0);
        // Every reported factor is solid and cannot be extended right.
        for f in set.factors() {
            assert!(is_solid(x.occurrence_probability(f.start, &f.letters), 4.0));
            let next = f.start + f.len();
            if next < x.len() {
                for (_, p) in x.letters_at(next) {
                    assert!(!is_solid(f.probability * p, 4.0));
                }
            }
        }
        // Factors starting at position 0 include AAAA (Example 6).
        assert!(set
            .factors()
            .iter()
            .any(|f| f.start == 0 && f.letters == vec![0, 0, 0, 0]));
        assert!(set.max_length() >= 4);
        assert!(set.total_length() >= set.len());
    }

    #[test]
    fn maximal_factors_are_not_left_extensible() {
        let x = paper_example();
        let z = 4.0;
        let set = SolidFactorSet::maximal(&x, z);
        assert!(!set.is_empty());
        for f in set.factors() {
            if f.start > 0 {
                for (_, p) in x.letters_at(f.start - 1) {
                    assert!(
                        !is_solid(p * f.probability, z),
                        "factor at {} can be extended left",
                        f.start
                    );
                }
            }
        }
        assert_eq!(set.z(), z);
    }

    #[test]
    fn per_start_leaf_count_is_at_most_z() {
        // Uniform distributions: many short factors; at most ⌊z⌋ leaves per start.
        let alphabet = Alphabet::new(b"AB").unwrap();
        let rows: Vec<Vec<f64>> = (0..12).map(|_| vec![0.5, 0.5]).collect();
        let x = WeightedString::from_rows(alphabet, &rows).unwrap();
        for z in [1.0, 2.0, 4.0, 8.0, 16.0] {
            let set = SolidFactorSet::right_maximal(&x, z);
            for start in 0..x.len() {
                let count = set.factors().iter().filter(|f| f.start == start).count();
                assert!(
                    count <= z as usize,
                    "start {start}: {count} right-maximal factors for z = {z}"
                );
            }
        }
    }

    #[test]
    fn deterministic_string_has_one_maximal_factor() {
        let x = WeightedString::deterministic(Alphabet::dna(), b"ACGTACGT").unwrap();
        let set = SolidFactorSet::maximal(&x, 8.0);
        // The only maximal solid factor is the whole string at position 0.
        assert_eq!(set.len(), 1);
        assert_eq!(set.factors()[0].start, 0);
        assert_eq!(set.factors()[0].len(), 8);
        // Right-maximal: one per starting position (each suffix).
        let rm = SolidFactorSet::right_maximal(&x, 8.0);
        assert_eq!(rm.len(), 8);
    }
}
