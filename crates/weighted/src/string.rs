//! The [`WeightedString`] type: a sequence of probability distributions.

use crate::alphabet::Alphabet;
use crate::error::{Error, Result};

/// Tolerance used when validating that a per-position distribution sums to 1.
pub const DISTRIBUTION_SUM_TOLERANCE: f64 = 1e-6;

/// An uncertain string in the character-level uncertainty model.
///
/// A `WeightedString` of length `n` over an alphabet of size `σ` stores, for
/// every position `i ∈ 0..n` and every letter rank `c ∈ 0..σ`, the probability
/// `p_i(c)` that letter `c` occurs at position `i`. Each position's
/// probabilities sum to 1.
///
/// The probabilities are stored densely in row-major order (`n × σ`), which is
/// the same `σ × n` matrix representation used in Example 1 of the paper, just
/// transposed for cache-friendly per-position access.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeightedString {
    alphabet: Alphabet,
    n: usize,
    /// `probs[i * σ + c]` = probability of letter rank `c` at position `i`.
    probs: Vec<f64>,
}

impl WeightedString {
    /// Builds a weighted string from one probability row per position.
    ///
    /// Row `i` must have exactly `σ` entries (ordered by letter rank), all
    /// non-negative, summing to 1 within [`DISTRIBUTION_SUM_TOLERANCE`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDistribution`] on the first malformed row, or
    /// [`Error::EmptyInput`] if no rows are given.
    pub fn from_rows(alphabet: Alphabet, rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(Error::EmptyInput("weighted string"));
        }
        let sigma = alphabet.size();
        let mut probs = Vec::with_capacity(rows.len() * sigma);
        for (i, row) in rows.iter().enumerate() {
            validate_row(i, row, sigma)?;
            probs.extend_from_slice(row);
        }
        Ok(Self {
            alphabet,
            n: rows.len(),
            probs,
        })
    }

    /// Builds a weighted string from a flat row-major probability matrix.
    ///
    /// `flat.len()` must be a non-zero multiple of `σ`.
    ///
    /// # Errors
    ///
    /// Same validation as [`WeightedString::from_rows`].
    pub fn from_flat(alphabet: Alphabet, flat: Vec<f64>) -> Result<Self> {
        let sigma = alphabet.size();
        if flat.is_empty() || !flat.len().is_multiple_of(sigma) {
            return Err(Error::InvalidParameters(format!(
                "flat probability matrix of length {} is not a non-zero multiple of σ = {sigma}",
                flat.len()
            )));
        }
        let n = flat.len() / sigma;
        for i in 0..n {
            validate_row(i, &flat[i * sigma..(i + 1) * sigma], sigma)?;
        }
        Ok(Self {
            alphabet,
            n,
            probs: flat,
        })
    }

    /// Builds a *deterministic* weighted string: position `i` has probability
    /// 1 for `text[i]` and 0 for every other letter.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSymbol`] if `text` contains a byte outside the
    /// alphabet, [`Error::EmptyInput`] if `text` is empty.
    pub fn deterministic(alphabet: Alphabet, text: &[u8]) -> Result<Self> {
        if text.is_empty() {
            return Err(Error::EmptyInput("weighted string"));
        }
        let sigma = alphabet.size();
        let mut probs = vec![0.0; text.len() * sigma];
        for (i, &b) in text.iter().enumerate() {
            let r = alphabet.rank_checked(b)? as usize;
            probs[i * sigma + r] = 1.0;
        }
        Ok(Self {
            alphabet,
            n: text.len(),
            probs,
        })
    }

    /// Builds a weighted string from non-negative per-position counts
    /// (e.g. allele counts across samples), normalising each row to sum to 1.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDistribution`] if a row has no positive count or a
    /// negative count; [`Error::EmptyInput`] if no rows are given;
    /// [`Error::InvalidParameters`] on arity mismatch.
    pub fn from_counts(alphabet: Alphabet, rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(Error::EmptyInput("weighted string"));
        }
        let sigma = alphabet.size();
        let mut normalised = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            if row.len() != sigma {
                return Err(Error::InvalidParameters(format!(
                    "count row {i} has {} entries, expected σ = {sigma}",
                    row.len()
                )));
            }
            if row.iter().any(|&c| c < 0.0 || !c.is_finite()) {
                return Err(Error::InvalidDistribution {
                    position: i,
                    reason: "negative or non-finite count".into(),
                });
            }
            let total: f64 = row.iter().sum();
            if total <= 0.0 {
                return Err(Error::InvalidDistribution {
                    position: i,
                    reason: "all counts are zero".into(),
                });
            }
            normalised.push(row.iter().map(|&c| c / total).collect::<Vec<f64>>());
        }
        Self::from_rows(alphabet, &normalised)
    }

    /// Length `n` of the weighted string.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the string has length 0 (never the case for a
    /// successfully constructed value, but required by convention).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Alphabet size σ.
    #[inline]
    pub fn sigma(&self) -> usize {
        self.alphabet.size()
    }

    /// The alphabet this string is defined over.
    #[inline]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Probability of letter rank `rank` at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= n` or `rank >= σ` (use the checked variants for
    /// untrusted input).
    #[inline]
    pub fn prob(&self, pos: usize, rank: u8) -> f64 {
        self.probs[pos * self.alphabet.size() + rank as usize]
    }

    /// Probability of the user byte `symbol` at position `pos`.
    ///
    /// # Errors
    ///
    /// [`Error::PositionOutOfBounds`] or [`Error::UnknownSymbol`].
    pub fn prob_symbol(&self, pos: usize, symbol: u8) -> Result<f64> {
        self.check_pos(pos)?;
        let rank = self.alphabet.rank_checked(symbol)?;
        Ok(self.prob(pos, rank))
    }

    /// The full probability distribution at position `pos`, indexed by rank.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= n`.
    #[inline]
    pub fn distribution(&self, pos: usize) -> &[f64] {
        let sigma = self.alphabet.size();
        &self.probs[pos * sigma..(pos + 1) * sigma]
    }

    /// Iterator over `(rank, probability)` pairs with positive probability at
    /// position `pos`, in rank order.
    pub fn letters_at(&self, pos: usize) -> impl Iterator<Item = (u8, f64)> + '_ {
        self.distribution(pos)
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(r, &p)| (r as u8, p))
    }

    /// Occurrence probability `P(X[start .. start+|P|-1] = P)` of a rank-encoded
    /// pattern `pattern` at position `start`.
    ///
    /// Returns 0 if the pattern does not fit inside the string.
    ///
    /// # Panics
    ///
    /// Panics if a rank in `pattern` is `>= σ`.
    pub fn occurrence_probability(&self, start: usize, pattern: &[u8]) -> f64 {
        if pattern.is_empty() {
            return 1.0;
        }
        if start + pattern.len() > self.n {
            return 0.0;
        }
        let mut p = 1.0;
        for (offset, &rank) in pattern.iter().enumerate() {
            p *= self.prob(start + offset, rank);
            if p == 0.0 {
                return 0.0;
            }
        }
        p
    }

    /// Occurrence probability of a byte pattern at `start`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSymbol`] if the pattern contains a byte outside the
    /// alphabet.
    pub fn occurrence_probability_bytes(&self, start: usize, pattern: &[u8]) -> Result<f64> {
        let encoded = self.alphabet.encode(pattern)?;
        Ok(self.occurrence_probability(start, &encoded))
    }

    /// The number of positions where more than one letter has positive
    /// probability, as a fraction of `n`.
    ///
    /// This is the Δ statistic reported in Table 2 of the paper.
    pub fn uncertainty_fraction(&self) -> f64 {
        let ambiguous = (0..self.n)
            .filter(|&i| self.distribution(i).iter().filter(|&&p| p > 0.0).count() > 1)
            .count();
        ambiguous as f64 / self.n as f64
    }

    /// The reverse weighted string: position `i` of the result carries the
    /// distribution of position `n-1-i` of `self`.
    ///
    /// Used by the space-efficient index construction, whose backward pass
    /// runs the forward algorithm on the reversed string.
    pub fn reversed(&self) -> Self {
        let sigma = self.alphabet.size();
        let mut probs = Vec::with_capacity(self.probs.len());
        for i in (0..self.n).rev() {
            probs.extend_from_slice(&self.probs[i * sigma..(i + 1) * sigma]);
        }
        Self {
            alphabet: self.alphabet.clone(),
            n: self.n,
            probs,
        }
    }

    /// The weighted substring `X[start..end)` (half-open range): position `i`
    /// of the result carries the distribution of position `start + i`.
    ///
    /// Used by the sharding layer to give every shard its own chunk of `X`.
    ///
    /// # Errors
    ///
    /// [`Error::PositionOutOfBounds`] if `end > n` or `start >= end`.
    pub fn substring(&self, start: usize, end: usize) -> Result<Self> {
        if end > self.n || start >= end {
            return Err(Error::PositionOutOfBounds {
                position: end.max(start),
                length: self.n,
            });
        }
        let sigma = self.alphabet.size();
        Ok(Self {
            alphabet: self.alphabet.clone(),
            n: end - start,
            probs: self.probs[start * sigma..end * sigma].to_vec(),
        })
    }

    /// The flat row-major probability matrix (`n × σ`), exposed for the
    /// persistence layer.
    #[inline]
    pub fn flat_probs(&self) -> &[f64] {
        &self.probs
    }

    /// Approximate heap size of the probability matrix, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.probs.capacity() * std::mem::size_of::<f64>()
    }

    #[inline]
    fn check_pos(&self, pos: usize) -> Result<()> {
        if pos >= self.n {
            Err(Error::PositionOutOfBounds {
                position: pos,
                length: self.n,
            })
        } else {
            Ok(())
        }
    }
}

fn validate_row(position: usize, row: &[f64], sigma: usize) -> Result<()> {
    if row.len() != sigma {
        return Err(Error::InvalidDistribution {
            position,
            reason: format!("has {} entries, expected σ = {sigma}", row.len()),
        });
    }
    let mut sum = 0.0;
    for &p in row {
        if !(0.0..=1.0 + DISTRIBUTION_SUM_TOLERANCE).contains(&p) || !p.is_finite() {
            return Err(Error::InvalidDistribution {
                position,
                reason: format!("probability {p} outside [0, 1]"),
            });
        }
        sum += p;
    }
    if (sum - 1.0).abs() > DISTRIBUTION_SUM_TOLERANCE {
        return Err(Error::InvalidDistribution {
            position,
            reason: format!("probabilities sum to {sum}, expected 1"),
        });
    }
    Ok(())
}

/// Convenience constructor for the running example of the paper (Example 1).
///
/// Exposed publicly because several crates' tests and examples use it.
pub fn paper_example() -> WeightedString {
    let alphabet = Alphabet::new(b"AB").expect("valid alphabet");
    WeightedString::from_rows(
        alphabet,
        &[
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.75, 0.25],
            vec![0.8, 0.2],
            vec![0.5, 0.5],
            vec![0.25, 0.75],
        ],
    )
    .expect("the paper's running example is a valid weighted string")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_probabilities() {
        let x = paper_example();
        assert_eq!(x.len(), 6);
        assert_eq!(x.sigma(), 2);
        // Example 1: P = ABA at position 3 (1-based) = 2 (0-based): 3/4 * 1/5 * 1/2 = 3/40.
        let p = x.occurrence_probability_bytes(2, b"ABA").unwrap();
        assert!((p - 3.0 / 40.0).abs() < 1e-12);
        // Example 6: AAAA at position 1 (1-based) has probability 0.3.
        let p = x.occurrence_probability_bytes(0, b"AAAA").unwrap();
        assert!((p - 0.3).abs() < 1e-12);
        // AABB at position 1 has probability 1/40.
        let p = x.occurrence_probability_bytes(0, b"AABB").unwrap();
        assert!((p - 1.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pattern_has_probability_one() {
        let x = paper_example();
        assert_eq!(x.occurrence_probability(0, &[]), 1.0);
        assert_eq!(x.occurrence_probability(5, &[]), 1.0);
    }

    #[test]
    fn pattern_past_the_end_has_probability_zero() {
        let x = paper_example();
        assert_eq!(x.occurrence_probability_bytes(5, b"AB").unwrap(), 0.0);
        assert_eq!(x.occurrence_probability_bytes(6, b"A").unwrap(), 0.0);
    }

    #[test]
    fn deterministic_string() {
        let x = WeightedString::deterministic(Alphabet::dna(), b"GATTACA").unwrap();
        assert_eq!(x.len(), 7);
        assert_eq!(x.prob_symbol(0, b'G').unwrap(), 1.0);
        assert_eq!(x.prob_symbol(0, b'A').unwrap(), 0.0);
        assert_eq!(x.occurrence_probability_bytes(0, b"GATTACA").unwrap(), 1.0);
        assert_eq!(x.occurrence_probability_bytes(1, b"ATTACA").unwrap(), 1.0);
        assert_eq!(x.occurrence_probability_bytes(0, b"GATTACC").unwrap(), 0.0);
        assert_eq!(x.uncertainty_fraction(), 0.0);
    }

    #[test]
    fn from_counts_normalises() {
        let x = WeightedString::from_counts(
            Alphabet::dna(),
            &[vec![3.0, 1.0, 0.0, 0.0], vec![0.0, 0.0, 2.0, 2.0]],
        )
        .unwrap();
        assert!((x.prob_symbol(0, b'A').unwrap() - 0.75).abs() < 1e-12);
        assert!((x.prob_symbol(1, b'G').unwrap() - 0.5).abs() < 1e-12);
        assert!((x.uncertainty_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_distributions() {
        let a = Alphabet::new(b"AB").unwrap();
        // Wrong arity.
        assert!(matches!(
            WeightedString::from_rows(a.clone(), &[vec![1.0]]),
            Err(Error::InvalidDistribution { position: 0, .. })
        ));
        // Does not sum to one.
        assert!(matches!(
            WeightedString::from_rows(a.clone(), &[vec![0.5, 0.4]]),
            Err(Error::InvalidDistribution { position: 0, .. })
        ));
        // Negative entry.
        assert!(matches!(
            WeightedString::from_rows(a.clone(), &[vec![1.2, -0.2]]),
            Err(Error::InvalidDistribution { position: 0, .. })
        ));
        // Empty.
        assert!(matches!(
            WeightedString::from_rows(a, &[]),
            Err(Error::EmptyInput(_))
        ));
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let a = Alphabet::new(b"AB").unwrap();
        let x1 = WeightedString::from_rows(a.clone(), &[vec![0.5, 0.5], vec![0.1, 0.9]]).unwrap();
        let x2 = WeightedString::from_flat(a, vec![0.5, 0.5, 0.1, 0.9]).unwrap();
        assert_eq!(x1, x2);
    }

    #[test]
    fn from_counts_rejects_zero_rows() {
        let a = Alphabet::new(b"AB").unwrap();
        assert!(WeightedString::from_counts(a.clone(), &[vec![0.0, 0.0]]).is_err());
        assert!(WeightedString::from_counts(a, &[vec![1.0, -1.0]]).is_err());
    }

    #[test]
    fn letters_at_skips_zero_probabilities() {
        let x = paper_example();
        let letters: Vec<(u8, f64)> = x.letters_at(0).collect();
        assert_eq!(letters, vec![(0, 1.0)]);
        let letters: Vec<(u8, f64)> = x.letters_at(1).collect();
        assert_eq!(letters.len(), 2);
    }

    #[test]
    fn substring_preserves_distributions() {
        let x = paper_example();
        let sub = x.substring(2, 5).unwrap();
        assert_eq!(sub.len(), 3);
        for i in 0..3 {
            assert_eq!(sub.distribution(i), x.distribution(2 + i));
        }
        // Occurrence probabilities translate by the offset.
        assert_eq!(
            sub.occurrence_probability(0, &[0, 1]).to_bits(),
            x.occurrence_probability(2, &[0, 1]).to_bits()
        );
        assert_eq!(x.substring(0, x.len()).unwrap(), x);
        assert!(x.substring(3, 3).is_err());
        assert!(x.substring(0, x.len() + 1).is_err());
    }

    #[test]
    fn uncertainty_fraction_of_paper_example() {
        let x = paper_example();
        // Positions 2..6 (1-based) have two letters with positive probability.
        assert!((x.uncertainty_fraction() - 5.0 / 6.0).abs() < 1e-12);
    }
}
