//! z-estimations (Theorem 2 of the paper, due to Barton et al.).
//!
//! A *z-estimation* of a weighted string `X` of length `n` is an indexed
//! family `S = (S_j, π_j)_{j=1..⌊z⌋}` of property strings such that for every
//! string `P` and every position `i`,
//!
//! ```text
//! Count_S(P, i) = ⌊ P(X[i..i+|P|-1] = P) · z ⌋ ,
//! ```
//!
//! where `Count_S(P, i)` is the number of strands in which `P` occurs at `i`
//! respecting the property. In particular every z-solid factor of `X` occurs
//! in at least one strand (completeness), and every property-respecting
//! factor of a strand is z-solid in `X` (soundness) — the two facts all the
//! indexes in this workspace rely on.
//!
//! # Construction
//!
//! The construction implemented here processes `X` left to right and
//! maintains, for every *active* starting position `s ≤ i`, the family of
//! *designation groups*: a group holds the strands that are currently
//! designated to carry one particular solid factor starting at `s`, together
//! with that factor's occurrence probability. The designated sets form a
//! laminar family (groups of earlier starting positions refine groups of
//! later ones), which allows the per-position letter assignment to satisfy
//! the exact-count contract at *every* active starting position
//! simultaneously: groups are processed from the earliest start to the
//! latest, each group first keeps the strands forced by deeper groups and
//! then tops up each letter's quota `⌊p·z⌋` from its unassigned members;
//! leftover members are cut, which fixes the property value `π_j[s]`.
//!
//! The construction runs in `O(nz)` space (the size of the output, as in
//! Theorem 2) and time `O(nz + W)` where `W` is the total number of
//! designation updates at uncertain positions.
//!
//! Three structural optimisations keep the constants small without changing
//! the letter assignment (the output is bit-identical to the direct
//! formulation):
//!
//! * levels created during a run of deterministic positions are merged into
//!   one *range level* — their designation state starts identical (every
//!   strand, probability 1) and evolves identically forever after, so one
//!   representative carries the whole run and cuts/flushes fan out over the
//!   start range;
//! * each level stores its groups as slices of one arena vector
//!   (`members` + per-group end offsets), and dead levels return their
//!   buffers to a pool — the steady state allocates nothing;
//! * letters are written position-major (one contiguous row per position)
//!   into a bounded staging buffer that is transposed into the per-strand
//!   sequences block by block, replacing `⌊z⌋` scattered writes per position
//!   with one while keeping the peak heap at a single letter matrix.

use crate::error::{Error, Result};
use crate::heavy::HeavyString;
use crate::property::PropertyString;
use crate::solid_multiplicity;
use crate::string::WeightedString;

/// The family of `⌊z⌋` property strings estimating a weighted string.
#[derive(Debug, Clone)]
pub struct ZEstimation {
    z: f64,
    n: usize,
    strands: Vec<PropertyString>,
}

/// Sentinel for "no letter assigned in this transition". Ranks reach at most
/// 254 (`Alphabet` caps σ at 255), so no collision is possible.
const NO_LETTER: u8 = u8::MAX;

/// Positions per staging block of the letter transpose (the staging buffer
/// holds `TRANSPOSE_BLOCK · ⌊z⌋` bytes and stays cache-resident).
const TRANSPOSE_BLOCK: usize = 2048;

/// Where the position-major staging rows go at each block boundary.
///
/// The serial path ([`LetterSink::Direct`]) transposes each full block
/// straight into the per-strand sequences — the PR-1 blocked transpose,
/// peak heap one letter matrix. The parallel path ([`LetterSink::Staged`])
/// instead *keeps* the position-major blocks and defers the transpose to
/// one fan-out over the strands at the very end, where every worker reads
/// the shared blocks and writes only its own strands' sequences — the same
/// bytes land at the same positions, just copied by different threads, so
/// the output is bit-identical by construction.
enum LetterSink {
    /// Transpose each block immediately into the letter matrix.
    Direct { letters: Vec<Vec<u8>> },
    /// Keep the position-major blocks for a deferred parallel transpose.
    Staged { blocks: Vec<Vec<u8>> },
}

impl LetterSink {
    /// Flushes the staging rows of the block ending at `pos` once the
    /// block is full (or the string ends).
    #[inline]
    fn flush(&mut self, staging: &[u8], pos: usize, n: usize, num_strands: usize) {
        if !(pos + 1).is_multiple_of(TRANSPOSE_BLOCK) && pos + 1 != n {
            return;
        }
        let block_start = pos - (pos % TRANSPOSE_BLOCK);
        let rows = pos - block_start + 1;
        match self {
            LetterSink::Direct { letters } => {
                for (strand, seq) in letters.iter_mut().enumerate() {
                    for p in block_start..=pos {
                        seq[p] = staging[(p - block_start) * num_strands + strand];
                    }
                }
            }
            LetterSink::Staged { blocks } => {
                blocks.push(staging[..rows * num_strands].to_vec());
            }
        }
    }
}

/// One designation group inside a level's arena: the strands in
/// `members[previous end..end]` carry a factor of probability `prob`.
#[derive(Clone, Copy)]
struct GroupMeta {
    /// Occurrence probability of the factor carried by this group.
    prob: f64,
    /// Exclusive end offset of the group's slice of the level's `members`.
    end: u32,
}

/// All designation groups for a contiguous range of active starting
/// positions whose designation state is identical (a deterministic run
/// produces one level covering every start of the run).
struct Level {
    /// First 0-based starting position represented by this level.
    first_start: u32,
    /// Last starting position represented by this level (inclusive).
    last_start: u32,
    /// `true` while the level is the single all-strand probability-1 group
    /// created by a deterministic run (the state in which merging is valid).
    pristine: bool,
    /// Concatenated member strand ids, grouped.
    members: Vec<u32>,
    groups: Vec<GroupMeta>,
}

impl Level {
    /// Marks every represented start of `strand` as cut at `pos`.
    #[inline]
    fn cut(&self, extents: &mut [Vec<u32>], strand: u32, pos: u32) {
        let row = &mut extents[strand as usize];
        for s in self.first_start..=self.last_start {
            row[s as usize] = pos;
        }
    }
}

impl ZEstimation {
    /// Builds a z-estimation of `x` for the weight threshold `1/z`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidThreshold`] unless `z ≥ 1` and finite.
    pub fn build(x: &WeightedString, z: f64) -> Result<Self> {
        Self::build_with_threads(x, z, 1)
    }

    /// Builds a z-estimation with the letter transpose and the final
    /// strand assembly fanned out over `threads` workers (`0` = all CPUs,
    /// `1` = the serial path of [`ZEstimation::build`]).
    ///
    /// The designation scan itself is inherently sequential (each
    /// position's assignment depends on every previous one), but it only
    /// *stages* letters position-major; with more than one thread the
    /// staged blocks are kept and transposed into the per-strand
    /// sequences by one parallel fan-out at the end, each worker writing
    /// only its own strands. The result is **bit-identical** to the
    /// serial build at every thread count (asserted by the workspace's
    /// determinism suite).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidThreshold`] unless `z ≥ 1` and finite.
    pub fn build_with_threads(x: &WeightedString, z: f64, threads: usize) -> Result<Self> {
        if !(z.is_finite() && z >= 1.0) {
            return Err(Error::InvalidThreshold(z));
        }
        let executor = ius_exec::Executor::with_threads(threads);
        let n = x.len();
        let num_strands = z.floor() as usize;
        let sigma = x.sigma();
        // Ranks reach sigma − 1, so the sentinel collides only for
        // sigma > 255 — which `Alphabet` already rejects; sigma = 255 is fine.
        assert!(
            sigma <= NO_LETTER as usize,
            "alphabet too large for the letter sentinel"
        );
        let heavy = HeavyString::new(x);

        // Output buffers. Letters are accumulated position-major (one
        // contiguous row of `⌊z⌋` bytes per position) in a bounded staging
        // buffer and flushed block by block into the sink: serially
        // transposed into one letter matrix, or (parallel build) kept
        // position-major for the deferred fan-out transpose. Either way
        // the peak heap stays at one full-size letter matrix plus
        // `TRANSPOSE_BLOCK·⌊z⌋` staging bytes. extents[j][s] starts as the
        // empty interval `s` and is overwritten when strand j is cut from
        // level `s` (or at the final flush).
        let mut sink = if executor.threads() <= 1 {
            LetterSink::Direct {
                letters: vec![vec![0u8; n]; num_strands],
            }
        } else {
            LetterSink::Staged {
                blocks: Vec::with_capacity(n.div_ceil(TRANSPOSE_BLOCK.max(1))),
            }
        };
        let mut staging: Vec<u8> = vec![0u8; TRANSPOSE_BLOCK.min(n.max(1)) * num_strands];
        let mut extents: Vec<Vec<u32>> = (0..num_strands)
            .map(|_| (0..n as u32).collect::<Vec<u32>>())
            .collect();

        // Active designation levels, ordered by increasing start position.
        let mut levels: Vec<Level> = Vec::new();
        // Letter assigned to each strand during the current transition
        // (`NO_LETTER` = unassigned).
        let mut assigned: Vec<u8> = vec![NO_LETTER; num_strands];
        // Scratch buffers reused across positions and buffer pools fed by
        // dead levels, so the steady state allocates nothing.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); sigma];
        let mut leftovers: Vec<u32> = Vec::new();
        let mut quotas: Vec<usize> = Vec::with_capacity(sigma);
        let mut scratch_members: Vec<u32> = Vec::new();
        let mut scratch_groups: Vec<GroupMeta> = Vec::new();
        let mut member_pool: Vec<Vec<u32>> = Vec::new();
        let mut group_pool: Vec<Vec<GroupMeta>> = Vec::new();

        for pos in 0..n {
            let dist = x.distribution(pos);
            let heavy_letter = heavy.letter(pos);
            let heavy_prob = dist[heavy_letter as usize];

            if heavy_prob >= 1.0 {
                // Deterministic position: every designation continues with the
                // single certain letter; all strands take it, and the new
                // level designates every strand. Consecutive deterministic
                // starts share one range level (identical state evolution).
                let at = (pos % TRANSPOSE_BLOCK) * num_strands;
                staging[at..at + num_strands].fill(heavy_letter);
                sink.flush(&staging, pos, n, num_strands);
                match levels.last_mut() {
                    Some(level) if level.pristine && level.last_start as usize + 1 == pos => {
                        level.last_start = pos as u32;
                    }
                    _ => {
                        let mut members = member_pool.pop().unwrap_or_default();
                        members.clear();
                        members.extend(0..num_strands as u32);
                        let mut groups = group_pool.pop().unwrap_or_default();
                        groups.clear();
                        groups.push(GroupMeta {
                            prob: 1.0,
                            end: num_strands as u32,
                        });
                        levels.push(Level {
                            first_start: pos as u32,
                            last_start: pos as u32,
                            pristine: true,
                            members,
                            groups,
                        });
                    }
                }
                continue;
            }

            // Uncertain position: reset the per-transition assignment.
            assigned.fill(NO_LETTER);

            // Process existing levels from the earliest start (deepest groups,
            // whose choices are forced upon shallower ones) to the latest.
            for level in levels.iter_mut() {
                scratch_members.clear();
                scratch_groups.clear();
                let mut begin = 0usize;
                for g in level.groups.iter() {
                    let members = &level.members[begin..g.end as usize];
                    begin = g.end as usize;

                    // Singleton fast path: the deep tail of the designation
                    // forest is dominated by one-strand groups, whose split
                    // needs no bucketing — the member keeps its forced letter
                    // or takes the first letter whose quota admits it.
                    if let [m] = *members {
                        let forced = assigned[m as usize];
                        let letter = if forced != NO_LETTER {
                            Some(forced)
                        } else {
                            // First letter (in rank order) with a positive
                            // quota, exactly as the bucket loop would assign.
                            dist.iter()
                                .position(|&p| solid_multiplicity(g.prob * p, z) > 0)
                                .map(|l| l as u8)
                        };
                        match letter {
                            Some(letter) => {
                                assigned[m as usize] = letter;
                                scratch_members.push(m);
                                scratch_groups.push(GroupMeta {
                                    prob: g.prob * dist[letter as usize],
                                    end: scratch_members.len() as u32,
                                });
                            }
                            None => level.cut(&mut extents, m, pos as u32),
                        }
                        continue;
                    }

                    // All-forced fast paths. A forced member's deeper
                    // designation has probability ≤ this group's, so its
                    // letter's quota here is positive: the death check cannot
                    // fire and no member is cut — the group splits purely by
                    // letter, no quota arithmetic needed.
                    let first_letter = assigned[members[0] as usize];
                    if first_letter != NO_LETTER {
                        let mut all_same = true;
                        let mut all_forced = true;
                        for &m in &members[1..] {
                            let letter = assigned[m as usize];
                            if letter == NO_LETTER {
                                all_forced = false;
                                break;
                            }
                            all_same &= letter == first_letter;
                        }
                        if all_forced && all_same {
                            scratch_members.extend_from_slice(members);
                            scratch_groups.push(GroupMeta {
                                prob: g.prob * dist[first_letter as usize],
                                end: scratch_members.len() as u32,
                            });
                            continue;
                        }
                        if all_forced && members.len() * sigma <= 64 {
                            // Small mixed group: σ passes beat the bucket
                            // machinery; emission stays in letter-rank order.
                            for letter in 0..sigma as u8 {
                                let before = scratch_members.len();
                                for &m in members {
                                    if assigned[m as usize] == letter {
                                        scratch_members.push(m);
                                    }
                                }
                                if scratch_members.len() > before {
                                    scratch_groups.push(GroupMeta {
                                        prob: g.prob * dist[letter as usize],
                                        end: scratch_members.len() as u32,
                                    });
                                }
                            }
                            continue;
                        }
                        // Large mixed all-forced groups fall through to the
                        // bucket path, where the quota arithmetic amortises.
                    }

                    // Letter quotas for the extended factors.
                    quotas.clear();
                    let mut total_quota = 0usize;
                    for &p in dist {
                        let q = solid_multiplicity(g.prob * p, z) as usize;
                        quotas.push(q);
                        total_quota += q;
                    }
                    if total_quota == 0 {
                        // The whole group dies: every member is cut at every
                        // start this level represents.
                        for &m in members {
                            level.cut(&mut extents, m, pos as u32);
                        }
                        continue;
                    }
                    for bucket in buckets.iter_mut() {
                        bucket.clear();
                    }
                    leftovers.clear();
                    // Forced members keep the letter a deeper group gave them.
                    for &m in members {
                        let letter = assigned[m as usize];
                        if letter != NO_LETTER {
                            buckets[letter as usize].push(m);
                        } else {
                            leftovers.push(m);
                        }
                    }
                    let mut next_leftover = 0usize;
                    for (letter, bucket) in buckets.iter_mut().enumerate() {
                        // Defensive: forced members can exceed the quota only
                        // through floating-point drift; designated strands are
                        // never dropped.
                        let quota = quotas[letter].max(bucket.len());
                        while bucket.len() < quota && next_leftover < leftovers.len() {
                            let m = leftovers[next_leftover];
                            next_leftover += 1;
                            assigned[m as usize] = letter as u8;
                            bucket.push(m);
                        }
                        if !bucket.is_empty() {
                            scratch_members.extend_from_slice(bucket);
                            scratch_groups.push(GroupMeta {
                                prob: g.prob * dist[letter],
                                end: scratch_members.len() as u32,
                            });
                        }
                    }
                    // Remaining members are cut from this level.
                    for &m in &leftovers[next_leftover..] {
                        level.cut(&mut extents, m, pos as u32);
                    }
                }
                std::mem::swap(&mut level.members, &mut scratch_members);
                std::mem::swap(&mut level.groups, &mut scratch_groups);
                level.pristine = false;
            }
            // Drop levels that lost all their designations, recycling their
            // buffers.
            levels.retain_mut(|level| {
                if level.groups.is_empty() {
                    member_pool.push(std::mem::take(&mut level.members));
                    group_pool.push(std::mem::take(&mut level.groups));
                    false
                } else {
                    true
                }
            });

            // Create the level for the new starting position `pos`. Forced
            // members are exactly the strands that received a letter in this
            // transition (they are designated at some earlier start and the
            // laminar nesting requires them to be designated here as well).
            for bucket in buckets.iter_mut() {
                bucket.clear();
            }
            leftovers.clear();
            for (strand, &letter) in assigned.iter().enumerate() {
                if letter != NO_LETTER {
                    buckets[letter as usize].push(strand as u32);
                } else {
                    leftovers.push(strand as u32);
                }
            }
            let mut members = member_pool.pop().unwrap_or_default();
            members.clear();
            let mut groups = group_pool.pop().unwrap_or_default();
            groups.clear();
            let at = (pos % TRANSPOSE_BLOCK) * num_strands;
            let row = &mut staging[at..at + num_strands];
            let mut next_leftover = 0usize;
            for (letter, bucket) in buckets.iter_mut().enumerate() {
                let target = solid_multiplicity(dist[letter], z) as usize;
                let quota = target.max(bucket.len());
                while bucket.len() < quota && next_leftover < leftovers.len() {
                    let strand = leftovers[next_leftover];
                    next_leftover += 1;
                    bucket.push(strand);
                }
                if !bucket.is_empty() {
                    for &strand in bucket.iter() {
                        row[strand as usize] = letter as u8;
                    }
                    members.extend_from_slice(bucket);
                    groups.push(GroupMeta {
                        prob: dist[letter],
                        end: members.len() as u32,
                    });
                }
            }
            // Undesignated strands take the heavy letter; they do not count
            // for any starting position, so the choice is immaterial.
            for &strand in &leftovers[next_leftover..] {
                row[strand as usize] = heavy_letter;
            }
            if groups.is_empty() {
                member_pool.push(members);
                group_pool.push(groups);
            } else {
                levels.push(Level {
                    first_start: pos as u32,
                    last_start: pos as u32,
                    pristine: false,
                    members,
                    groups,
                });
            }
            sink.flush(&staging, pos, n, num_strands);
        }

        // Final flush: designations alive at the end of the string cover up
        // to position n-1.
        for level in &levels {
            for &m in &level.members {
                level.cut(&mut extents, m, n as u32);
            }
        }

        let letters = match sink {
            LetterSink::Direct { letters } => letters,
            LetterSink::Staged { blocks } => {
                // The deferred transpose: every worker reads the shared
                // position-major blocks and writes only its own strands'
                // sequences — the same bytes land at the same positions
                // as the serial per-block transpose.
                let seqs = executor.run(num_strands, |strand| {
                    let mut seq = vec![0u8; n];
                    let mut base = 0usize;
                    for block in &blocks {
                        let rows = block.len() / num_strands.max(1);
                        for (i, row) in block.chunks_exact(num_strands).enumerate() {
                            seq[base + i] = row[strand];
                        }
                        base += rows;
                    }
                    debug_assert_eq!(base, n);
                    seq
                });
                seqs.into_iter()
                    .map(|outcome| match outcome {
                        Ok(seq) => seq,
                        Err(task_panic) => panic!("{task_panic}"),
                    })
                    .collect()
            }
        };
        let strands = letters
            .into_iter()
            .zip(extents)
            .map(|(seq, extent)| PropertyString::new(seq, extent))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { z, n, strands })
    }

    /// The direct (pre-overhaul) formulation of the construction: one level
    /// per position, one heap-allocated member list per group. Produces the
    /// same strands as [`ZEstimation::build`] letter for letter; retained as
    /// the differential-testing baseline and as the "before" measurement of
    /// the construction benchmark.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidThreshold`] unless `z ≥ 1` and finite.
    pub fn build_reference(x: &WeightedString, z: f64) -> Result<Self> {
        if !(z.is_finite() && z >= 1.0) {
            return Err(Error::InvalidThreshold(z));
        }
        struct Group {
            prob: f64,
            members: Vec<u32>,
        }
        struct RefLevel {
            start: usize,
            groups: Vec<Group>,
        }
        let n = x.len();
        let num_strands = z.floor() as usize;
        let sigma = x.sigma();
        let heavy = HeavyString::new(x);

        let mut letters: Vec<Vec<u8>> = vec![vec![0u8; n]; num_strands];
        let mut extents: Vec<Vec<u32>> = (0..num_strands)
            .map(|_| (0..n as u32).collect::<Vec<u32>>())
            .collect();
        let mut levels: Vec<RefLevel> = Vec::new();
        let mut assigned: Vec<Option<u8>> = vec![None; num_strands];
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); sigma];
        let mut leftovers: Vec<u32> = Vec::new();

        for pos in 0..n {
            let dist = x.distribution(pos);
            let heavy_letter = heavy.letter(pos);
            if dist[heavy_letter as usize] >= 1.0 {
                for strand_letters in letters.iter_mut() {
                    strand_letters[pos] = heavy_letter;
                }
                levels.push(RefLevel {
                    start: pos,
                    groups: vec![Group {
                        prob: 1.0,
                        members: (0..num_strands as u32).collect(),
                    }],
                });
                continue;
            }
            for a in assigned.iter_mut() {
                *a = None;
            }
            for level in levels.iter_mut() {
                let start = level.start;
                let mut new_groups: Vec<Group> = Vec::with_capacity(level.groups.len());
                for group in level.groups.drain(..) {
                    let mut total_quota = 0usize;
                    let mut quotas: Vec<usize> = Vec::with_capacity(sigma);
                    for &p in dist.iter() {
                        let q = solid_multiplicity(group.prob * p, z) as usize;
                        quotas.push(q);
                        total_quota += q;
                    }
                    if total_quota == 0 {
                        for &m in &group.members {
                            extents[m as usize][start] = pos as u32;
                        }
                        continue;
                    }
                    for bucket in buckets.iter_mut() {
                        bucket.clear();
                    }
                    leftovers.clear();
                    for &m in &group.members {
                        match assigned[m as usize] {
                            Some(letter) => buckets[letter as usize].push(m),
                            None => leftovers.push(m),
                        }
                    }
                    let mut next_leftover = 0usize;
                    for (letter, bucket) in buckets.iter_mut().enumerate() {
                        let quota = quotas[letter].max(bucket.len());
                        while bucket.len() < quota && next_leftover < leftovers.len() {
                            let m = leftovers[next_leftover];
                            next_leftover += 1;
                            assigned[m as usize] = Some(letter as u8);
                            bucket.push(m);
                        }
                        if !bucket.is_empty() {
                            new_groups.push(Group {
                                prob: group.prob * dist[letter],
                                members: std::mem::take(bucket),
                            });
                        }
                    }
                    for &m in &leftovers[next_leftover..] {
                        extents[m as usize][start] = pos as u32;
                    }
                }
                level.groups = new_groups;
            }
            levels.retain(|level| !level.groups.is_empty());

            let mut new_level = RefLevel {
                start: pos,
                groups: Vec::new(),
            };
            for bucket in buckets.iter_mut() {
                bucket.clear();
            }
            leftovers.clear();
            for (strand, a) in assigned.iter().enumerate() {
                match a {
                    Some(letter) => buckets[*letter as usize].push(strand as u32),
                    None => leftovers.push(strand as u32),
                }
            }
            let mut next_leftover = 0usize;
            for (letter, bucket) in buckets.iter_mut().enumerate() {
                let target = solid_multiplicity(dist[letter], z) as usize;
                let quota = target.max(bucket.len());
                while bucket.len() < quota && next_leftover < leftovers.len() {
                    let strand = leftovers[next_leftover];
                    next_leftover += 1;
                    assigned[strand as usize] = Some(letter as u8);
                    bucket.push(strand);
                }
                if !bucket.is_empty() {
                    for &strand in bucket.iter() {
                        letters[strand as usize][pos] = letter as u8;
                    }
                    new_level.groups.push(Group {
                        prob: dist[letter],
                        members: std::mem::take(bucket),
                    });
                }
            }
            for &strand in &leftovers[next_leftover..] {
                letters[strand as usize][pos] = heavy_letter;
            }
            if !new_level.groups.is_empty() {
                levels.push(new_level);
            }
        }

        for level in &levels {
            for group in &level.groups {
                for &m in &group.members {
                    extents[m as usize][level.start] = n as u32;
                }
            }
        }

        let strands = letters
            .into_iter()
            .zip(extents)
            .map(|(seq, extent)| PropertyString::new(seq, extent))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { z, n, strands })
    }

    /// The weight-threshold denominator `z`.
    #[inline]
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Length `n` of the estimated weighted string.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the underlying weighted string was empty (never the case
    /// for a constructed value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of strands, `⌊z⌋`.
    #[inline]
    pub fn num_strands(&self) -> usize {
        self.strands.len()
    }

    /// The strands `(S_j, π_j)`.
    #[inline]
    pub fn strands(&self) -> &[PropertyString] {
        &self.strands
    }

    /// One strand.
    #[inline]
    pub fn strand(&self, j: usize) -> &PropertyString {
        &self.strands[j]
    }

    /// `Count_S(P, i)`: the number of strands in which the rank-encoded
    /// pattern occurs at position `i` respecting the property.
    pub fn count(&self, pattern: &[u8], position: usize) -> usize {
        self.strands
            .iter()
            .filter(|s| s.occurs_at(pattern, position))
            .count()
    }

    /// [`ZEstimation::count`] for a byte pattern; the alphabet of the original
    /// weighted string must be supplied for encoding.
    ///
    /// This convenience method assumes the strands were produced from a
    /// weighted string over the alphabet `{A, B, …}` used in the paper's
    /// examples: ranks are taken as `pattern[i] - b'A'`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSymbol`] if a byte is not an uppercase ASCII letter
    /// within the first `σ`-many letters.
    pub fn count_bytes(&self, pattern: &[u8], position: usize) -> Result<usize> {
        let encoded: Vec<u8> = pattern
            .iter()
            .map(|&b| {
                if b.is_ascii_uppercase() {
                    Ok(b - b'A')
                } else {
                    Err(Error::UnknownSymbol(b))
                }
            })
            .collect::<Result<Vec<u8>>>()?;
        Ok(self.count(&encoded, position))
    }

    /// Verifies the defining contract of a z-estimation against `x` by brute
    /// force, for every position and every solid factor up to length
    /// `max_len` (plus soundness of every strand). Intended for tests.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidProperty`] describing the first violated constraint.
    pub fn verify_contract(&self, x: &WeightedString, max_len: usize) -> Result<()> {
        for strand in &self.strands {
            strand.verify_sound(x, self.z)?;
        }
        let sigma = x.sigma() as u8;
        for start in 0..x.len() {
            // Enumerate all strings over the alphabet of length ≤ max_len
            // whose occurrence probability is positive, via DFS.
            let mut stack: Vec<(Vec<u8>, f64)> = vec![(Vec::new(), 1.0)];
            while let Some((prefix, prob)) = stack.pop() {
                if prefix.len() >= max_len || start + prefix.len() >= x.len() {
                    continue;
                }
                for c in 0..sigma {
                    let p = prob * x.prob(start + prefix.len(), c);
                    if p <= 0.0 {
                        continue;
                    }
                    let mut factor = prefix.clone();
                    factor.push(c);
                    let expected = solid_multiplicity(p, self.z) as usize;
                    let got = self.count(&factor, start);
                    if got != expected {
                        return Err(Error::InvalidProperty(format!(
                            "Count_S mismatch at position {start} for factor {factor:?}: expected {expected}, got {got} (p = {p:.6})"
                        )));
                    }
                    if expected > 0 {
                        stack.push((factor, p));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total heap size of the family in bytes (letters + property arrays).
    ///
    /// This is the "size of z-estimation" statistic of Table 2.
    pub fn memory_bytes(&self) -> usize {
        self.strands.iter().map(PropertyString::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::string::paper_example;
    use crate::{is_solid, Alphabet};

    #[test]
    fn rejects_invalid_z() {
        let x = paper_example();
        assert!(ZEstimation::build(&x, 0.5).is_err());
        assert!(ZEstimation::build(&x, f64::NAN).is_err());
        assert!(ZEstimation::build(&x, f64::INFINITY).is_err());
        assert!(ZEstimation::build(&x, 1.0).is_ok());
    }

    #[test]
    fn paper_example_z4_counts() {
        // Example 4 of the paper: for z = 4, P = AB at position 1 (1-based)
        // occurs in exactly 2 strands respecting the property.
        let x = paper_example();
        let est = ZEstimation::build(&x, 4.0).unwrap();
        assert_eq!(est.num_strands(), 4);
        assert_eq!(est.count_bytes(b"AB", 0).unwrap(), 2);
        // AAAA at position 1 (1-based) has probability 0.3 → ⌊1.2⌋ = 1.
        assert_eq!(est.count_bytes(b"AAAA", 0).unwrap(), 1);
        // ABAB at position 1 has probability 3/40 → 0.
        assert_eq!(est.count_bytes(b"ABAB", 0).unwrap(), 0);
        // Single letters at position 2 (1-based): both A and B have p = 1/2 → 2 strands each.
        assert_eq!(est.count_bytes(b"A", 1).unwrap(), 2);
        assert_eq!(est.count_bytes(b"B", 1).unwrap(), 2);
    }

    #[test]
    fn paper_example_full_contract() {
        let x = paper_example();
        for z in [1.0, 2.0, 3.0, 4.0, 5.5, 8.0, 16.0] {
            let est = ZEstimation::build(&x, z).unwrap();
            est.verify_contract(&x, x.len()).unwrap();
        }
    }

    #[test]
    fn deterministic_string_estimation() {
        let x = WeightedString::deterministic(Alphabet::dna(), b"ACGTACGTAC").unwrap();
        let est = ZEstimation::build(&x, 7.0).unwrap();
        assert_eq!(est.num_strands(), 7);
        for strand in est.strands() {
            // Every strand spells the text and covers everything.
            assert_eq!(
                strand.seq(),
                x.alphabet().encode(b"ACGTACGTAC").unwrap().as_slice()
            );
            assert_eq!(strand.extent(0), 10);
            assert_eq!(strand.extent(9), 10);
        }
        est.verify_contract(&x, 10).unwrap();
    }

    #[test]
    fn uniform_positions_split_strands_evenly() {
        // Two positions, uniform over {A, B}; z = 4 → each of AA, AB, BA, BB
        // must appear in exactly one strand.
        let alphabet = Alphabet::new(b"AB").unwrap();
        let x = WeightedString::from_rows(alphabet, &[vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        let est = ZEstimation::build(&x, 4.0).unwrap();
        est.verify_contract(&x, 2).unwrap();
        for pattern in [[0u8, 0], [0, 1], [1, 0], [1, 1]] {
            assert_eq!(est.count(&pattern, 0), 1, "pattern {pattern:?}");
        }
    }

    #[test]
    fn completeness_every_solid_factor_is_covered() {
        // Randomised check on a slightly larger string.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let alphabet = Alphabet::new(b"AB").unwrap();
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|_| {
                let p: f64 = rng.gen_range(0.0..=1.0);
                vec![p, 1.0 - p]
            })
            .collect();
        let x = WeightedString::from_rows(alphabet, &rows).unwrap();
        for z in [2.0, 4.0, 9.0] {
            let est = ZEstimation::build(&x, z).unwrap();
            // For a sample of positions and lengths, solid factors must occur
            // in ≥ 1 strand and non-solid ones in 0 strands.
            for start in 0..x.len() {
                for len in 1..=(x.len() - start).min(10) {
                    // Check the heavy-ish pattern built by taking argmax letters.
                    let pattern: Vec<u8> = (start..start + len)
                        .map(|i| {
                            if x.prob(i, 0) >= x.prob(i, 1) {
                                0u8
                            } else {
                                1u8
                            }
                        })
                        .collect();
                    let p = x.occurrence_probability(start, &pattern);
                    let count = est.count(&pattern, start);
                    assert_eq!(count, solid_multiplicity(p, z) as usize);
                    if is_solid(p, z) {
                        assert!(count >= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn strands_are_sound() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let alphabet = Alphabet::dna();
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|_| {
                let mut v: Vec<f64> = (0..4).map(|_| rng.gen_range(0.01..1.0)).collect();
                let s: f64 = v.iter().sum();
                v.iter_mut().for_each(|p| *p /= s);
                v
            })
            .collect();
        let x = WeightedString::from_rows(alphabet, &rows).unwrap();
        for z in [1.0, 3.0, 8.0, 20.0] {
            let est = ZEstimation::build(&x, z).unwrap();
            for strand in est.strands() {
                strand.verify_sound(&x, z).unwrap();
            }
        }
    }

    #[test]
    fn optimized_build_is_bit_identical_to_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xE57);
        for sigma in [2usize, 4] {
            for trial in 0..6 {
                // Mix deterministic and uncertain positions so both the
                // range-level merging and the singleton fast path trigger.
                let alphabet = Alphabet::integer(sigma).unwrap();
                let rows: Vec<Vec<f64>> = (0..200)
                    .map(|_| {
                        if rng.gen_bool(0.6) {
                            let mut row = vec![0.0; sigma];
                            row[rng.gen_range(0..sigma)] = 1.0;
                            row
                        } else {
                            let mut v: Vec<f64> =
                                (0..sigma).map(|_| rng.gen_range(0.05..1.0)).collect();
                            let s: f64 = v.iter().sum();
                            v.iter_mut().for_each(|p| *p /= s);
                            v
                        }
                    })
                    .collect();
                let x = WeightedString::from_rows(alphabet, &rows).unwrap();
                for z in [1.0, 3.0, 7.5, 16.0] {
                    let fast = ZEstimation::build(&x, z).unwrap();
                    let reference = ZEstimation::build_reference(&x, z).unwrap();
                    assert_eq!(fast.num_strands(), reference.num_strands());
                    for (a, b) in fast.strands().iter().zip(reference.strands()) {
                        assert_eq!(a.seq(), b.seq(), "sigma={sigma} trial={trial} z={z}");
                        assert_eq!(
                            a.extents(),
                            b.extents(),
                            "sigma={sigma} trial={trial} z={z}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for sigma in [2usize, 4] {
            let alphabet = Alphabet::integer(sigma).unwrap();
            let rows: Vec<Vec<f64>> = (0..300)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        let mut row = vec![0.0; sigma];
                        row[rng.gen_range(0..sigma)] = 1.0;
                        row
                    } else {
                        let mut v: Vec<f64> =
                            (0..sigma).map(|_| rng.gen_range(0.05..1.0)).collect();
                        let s: f64 = v.iter().sum();
                        v.iter_mut().for_each(|p| *p /= s);
                        v
                    }
                })
                .collect();
            let x = WeightedString::from_rows(alphabet, &rows).unwrap();
            for z in [1.0, 4.0, 12.0] {
                let serial = ZEstimation::build(&x, z).unwrap();
                for threads in [2usize, 3, 8] {
                    let parallel = ZEstimation::build_with_threads(&x, z, threads).unwrap();
                    assert_eq!(parallel.num_strands(), serial.num_strands());
                    for (a, b) in parallel.strands().iter().zip(serial.strands()) {
                        assert_eq!(a.seq(), b.seq(), "sigma={sigma} z={z} threads={threads}");
                        assert_eq!(
                            a.extents(),
                            b.extents(),
                            "sigma={sigma} z={z} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn maximum_alphabet_size_is_supported() {
        // σ = 255 is the largest size `Alphabet` accepts; ranks reach 254 and
        // must not collide with the construction's letter sentinel.
        let sigma = 255usize;
        let alphabet = Alphabet::integer(sigma).unwrap();
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let mut row = vec![0.0; sigma];
                if i % 3 == 0 {
                    row[i % sigma] = 1.0;
                } else {
                    row[i % sigma] = 0.6;
                    row[(i + 100) % sigma] = 0.4;
                }
                row
            })
            .collect();
        let x = WeightedString::from_rows(alphabet, &rows).unwrap();
        let est = ZEstimation::build(&x, 4.0).unwrap();
        est.verify_contract(&x, 4).unwrap();
        let reference = ZEstimation::build_reference(&x, 4.0).unwrap();
        for (a, b) in est.strands().iter().zip(reference.strands()) {
            assert_eq!(a.seq(), b.seq());
            assert_eq!(a.extents(), b.extents());
        }
    }

    #[test]
    fn memory_reporting_is_positive_and_scales() {
        let x = paper_example();
        let small = ZEstimation::build(&x, 2.0).unwrap().memory_bytes();
        let large = ZEstimation::build(&x, 16.0).unwrap().memory_bytes();
        assert!(small > 0);
        assert!(large > small);
    }
}
