//! z-estimations (Theorem 2 of the paper, due to Barton et al.).
//!
//! A *z-estimation* of a weighted string `X` of length `n` is an indexed
//! family `S = (S_j, π_j)_{j=1..⌊z⌋}` of property strings such that for every
//! string `P` and every position `i`,
//!
//! ```text
//! Count_S(P, i) = ⌊ P(X[i..i+|P|-1] = P) · z ⌋ ,
//! ```
//!
//! where `Count_S(P, i)` is the number of strands in which `P` occurs at `i`
//! respecting the property. In particular every z-solid factor of `X` occurs
//! in at least one strand (completeness), and every property-respecting
//! factor of a strand is z-solid in `X` (soundness) — the two facts all the
//! indexes in this workspace rely on.
//!
//! # Construction
//!
//! The construction implemented here processes `X` left to right and
//! maintains, for every *active* starting position `s ≤ i`, the family of
//! *designation groups*: a group holds the strands that are currently
//! designated to carry one particular solid factor starting at `s`, together
//! with that factor's occurrence probability. The designated sets form a
//! laminar family (groups of earlier starting positions refine groups of
//! later ones), which allows the per-position letter assignment to satisfy
//! the exact-count contract at *every* active starting position
//! simultaneously: groups are processed from the earliest start to the
//! latest, each group first keeps the strands forced by deeper groups and
//! then tops up each letter's quota `⌊p·z⌋` from its unassigned members;
//! leftover members are cut, which fixes the property value `π_j[s]`.
//!
//! The construction runs in `O(nz)` space (the size of the output, as in
//! Theorem 2) and time `O(nz + W)` where `W` is the total number of
//! designation updates at uncertain positions.

use crate::error::{Error, Result};
use crate::heavy::HeavyString;
use crate::property::PropertyString;
use crate::solid_multiplicity;
use crate::string::WeightedString;

/// The family of `⌊z⌋` property strings estimating a weighted string.
#[derive(Debug, Clone)]
pub struct ZEstimation {
    z: f64,
    n: usize,
    strands: Vec<PropertyString>,
}

/// A group of strands designated to carry one solid factor that starts at a
/// common position and spans up to the current position.
struct Group {
    /// Occurrence probability of the factor carried by this group.
    prob: f64,
    /// Strand ids designated for this factor.
    members: Vec<u32>,
}

/// All designation groups for one active starting position.
struct Level {
    /// 0-based starting position of the factors carried by this level.
    start: usize,
    groups: Vec<Group>,
}

impl ZEstimation {
    /// Builds a z-estimation of `x` for the weight threshold `1/z`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidThreshold`] unless `z ≥ 1` and finite.
    pub fn build(x: &WeightedString, z: f64) -> Result<Self> {
        if !(z.is_finite() && z >= 1.0) {
            return Err(Error::InvalidThreshold(z));
        }
        let n = x.len();
        let num_strands = z.floor() as usize;
        let sigma = x.sigma();
        let heavy = HeavyString::new(x);

        // Output buffers.
        let mut letters: Vec<Vec<u8>> = vec![vec![0u8; n]; num_strands];
        // extents[j][s] starts as the empty interval `s` and is overwritten
        // when strand j is cut from level `s` (or at the final flush).
        let mut extents: Vec<Vec<u32>> = (0..num_strands)
            .map(|_| (0..n as u32).collect::<Vec<u32>>())
            .collect();

        // Active designation levels, ordered by increasing start position.
        let mut levels: Vec<Level> = Vec::new();
        // Letter assigned to each strand during the current transition.
        let mut assigned: Vec<Option<u8>> = vec![None; num_strands];
        // Scratch buffers reused across positions.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); sigma];
        let mut leftovers: Vec<u32> = Vec::new();

        for pos in 0..n {
            let dist = x.distribution(pos);
            let heavy_letter = heavy.letter(pos);
            let heavy_prob = dist[heavy_letter as usize];

            if heavy_prob >= 1.0 {
                // Deterministic position: every designation continues with the
                // single certain letter; all strands take it, and the new
                // level designates every strand.
                for strand_letters in letters.iter_mut() {
                    strand_letters[pos] = heavy_letter;
                }
                levels.push(Level {
                    start: pos,
                    groups: vec![Group { prob: 1.0, members: (0..num_strands as u32).collect() }],
                });
                continue;
            }

            // Uncertain position: reset the per-transition assignment.
            for a in assigned.iter_mut() {
                *a = None;
            }

            // Process existing levels from the earliest start (deepest groups,
            // whose choices are forced upon shallower ones) to the latest.
            for level in levels.iter_mut() {
                let start = level.start;
                let mut new_groups: Vec<Group> = Vec::with_capacity(level.groups.len());
                for group in level.groups.drain(..) {
                    split_group(
                        group,
                        dist,
                        z,
                        pos,
                        start,
                        &mut assigned,
                        &mut extents,
                        &mut buckets,
                        &mut leftovers,
                        &mut new_groups,
                    );
                }
                level.groups = new_groups;
            }
            // Drop levels that lost all their designations.
            levels.retain(|level| !level.groups.is_empty());

            // Create the level for the new starting position `pos`. Forced
            // members are exactly the strands that received a letter in this
            // transition (they are designated at some earlier start and the
            // laminar nesting requires them to be designated here as well).
            let mut new_level = Level { start: pos, groups: Vec::new() };
            for bucket in buckets.iter_mut() {
                bucket.clear();
            }
            leftovers.clear();
            for (strand, a) in assigned.iter().enumerate() {
                match a {
                    Some(letter) => buckets[*letter as usize].push(strand as u32),
                    None => leftovers.push(strand as u32),
                }
            }
            let mut next_leftover = 0usize;
            for (letter, bucket) in buckets.iter_mut().enumerate() {
                let target = solid_multiplicity(dist[letter], z) as usize;
                let quota = target.max(bucket.len());
                while bucket.len() < quota && next_leftover < leftovers.len() {
                    let strand = leftovers[next_leftover];
                    next_leftover += 1;
                    assigned[strand as usize] = Some(letter as u8);
                    bucket.push(strand);
                }
                if !bucket.is_empty() {
                    for &strand in bucket.iter() {
                        letters[strand as usize][pos] = letter as u8;
                    }
                    new_level
                        .groups
                        .push(Group { prob: dist[letter], members: std::mem::take(bucket) });
                }
            }
            // Undesignated strands take the heavy letter; they do not count
            // for any starting position, so the choice is immaterial.
            for &strand in &leftovers[next_leftover..] {
                letters[strand as usize][pos] = heavy_letter;
            }
            if !new_level.groups.is_empty() {
                levels.push(new_level);
            }
        }

        // Final flush: designations alive at the end of the string cover up
        // to position n-1.
        for level in &levels {
            for group in &level.groups {
                for &m in &group.members {
                    extents[m as usize][level.start] = n as u32;
                }
            }
        }

        let strands = letters
            .into_iter()
            .zip(extents)
            .map(|(seq, extent)| PropertyString::new(seq, extent))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { z, n, strands })
    }

    /// The weight-threshold denominator `z`.
    #[inline]
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Length `n` of the estimated weighted string.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the underlying weighted string was empty (never the case
    /// for a constructed value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of strands, `⌊z⌋`.
    #[inline]
    pub fn num_strands(&self) -> usize {
        self.strands.len()
    }

    /// The strands `(S_j, π_j)`.
    #[inline]
    pub fn strands(&self) -> &[PropertyString] {
        &self.strands
    }

    /// One strand.
    #[inline]
    pub fn strand(&self, j: usize) -> &PropertyString {
        &self.strands[j]
    }

    /// `Count_S(P, i)`: the number of strands in which the rank-encoded
    /// pattern occurs at position `i` respecting the property.
    pub fn count(&self, pattern: &[u8], position: usize) -> usize {
        self.strands.iter().filter(|s| s.occurs_at(pattern, position)).count()
    }

    /// [`ZEstimation::count`] for a byte pattern; the alphabet of the original
    /// weighted string must be supplied for encoding.
    ///
    /// This convenience method assumes the strands were produced from a
    /// weighted string over the alphabet `{A, B, …}` used in the paper's
    /// examples: ranks are taken as `pattern[i] - b'A'`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSymbol`] if a byte is not an uppercase ASCII letter
    /// within the first `σ`-many letters.
    pub fn count_bytes(&self, pattern: &[u8], position: usize) -> Result<usize> {
        let encoded: Vec<u8> = pattern
            .iter()
            .map(|&b| {
                if b.is_ascii_uppercase() {
                    Ok(b - b'A')
                } else {
                    Err(Error::UnknownSymbol(b))
                }
            })
            .collect::<Result<Vec<u8>>>()?;
        Ok(self.count(&encoded, position))
    }

    /// Verifies the defining contract of a z-estimation against `x` by brute
    /// force, for every position and every solid factor up to length
    /// `max_len` (plus soundness of every strand). Intended for tests.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidProperty`] describing the first violated constraint.
    pub fn verify_contract(&self, x: &WeightedString, max_len: usize) -> Result<()> {
        for strand in &self.strands {
            strand.verify_sound(x, self.z)?;
        }
        let sigma = x.sigma() as u8;
        for start in 0..x.len() {
            // Enumerate all strings over the alphabet of length ≤ max_len
            // whose occurrence probability is positive, via DFS.
            let mut stack: Vec<(Vec<u8>, f64)> = vec![(Vec::new(), 1.0)];
            while let Some((prefix, prob)) = stack.pop() {
                if prefix.len() >= max_len || start + prefix.len() >= x.len() {
                    continue;
                }
                for c in 0..sigma {
                    let p = prob * x.prob(start + prefix.len(), c);
                    if p <= 0.0 {
                        continue;
                    }
                    let mut factor = prefix.clone();
                    factor.push(c);
                    let expected = solid_multiplicity(p, self.z) as usize;
                    let got = self.count(&factor, start);
                    if got != expected {
                        return Err(Error::InvalidProperty(format!(
                            "Count_S mismatch at position {start} for factor {factor:?}: expected {expected}, got {got} (p = {p:.6})"
                        )));
                    }
                    if expected > 0 {
                        stack.push((factor, p));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total heap size of the family in bytes (letters + property arrays).
    ///
    /// This is the "size of z-estimation" statistic of Table 2.
    pub fn memory_bytes(&self) -> usize {
        self.strands.iter().map(PropertyString::memory_bytes).sum()
    }
}

/// Splits one designation group according to the letter distribution at
/// position `pos`, honouring letters already forced by deeper groups, topping
/// up each letter's quota from unassigned members, and cutting the rest.
#[allow(clippy::too_many_arguments)]
fn split_group(
    group: Group,
    dist: &[f64],
    z: f64,
    pos: usize,
    start: usize,
    assigned: &mut [Option<u8>],
    extents: &mut [Vec<u32>],
    buckets: &mut [Vec<u32>],
    leftovers: &mut Vec<u32>,
    out: &mut Vec<Group>,
) {
    let sigma = dist.len();
    // Letter quotas for the extended factors.
    let mut total_quota = 0usize;
    let mut quotas: Vec<usize> = Vec::with_capacity(sigma);
    for &p in dist.iter() {
        let q = solid_multiplicity(group.prob * p, z) as usize;
        quotas.push(q);
        total_quota += q;
    }
    if total_quota == 0 {
        // The whole group dies: every member is cut at this level.
        for &m in &group.members {
            extents[m as usize][start] = pos as u32;
        }
        return;
    }
    for bucket in buckets.iter_mut() {
        bucket.clear();
    }
    leftovers.clear();
    // Forced members keep the letter a deeper group gave them.
    for &m in &group.members {
        match assigned[m as usize] {
            Some(letter) => buckets[letter as usize].push(m),
            None => leftovers.push(m),
        }
    }
    let mut next_leftover = 0usize;
    for (letter, bucket) in buckets.iter_mut().enumerate() {
        // Defensive: forced members can exceed the quota only through
        // floating-point drift; designated strands are never dropped.
        let quota = quotas[letter].max(bucket.len());
        while bucket.len() < quota && next_leftover < leftovers.len() {
            let m = leftovers[next_leftover];
            next_leftover += 1;
            assigned[m as usize] = Some(letter as u8);
            bucket.push(m);
        }
        if !bucket.is_empty() {
            out.push(Group {
                prob: group.prob * dist[letter],
                members: std::mem::take(bucket),
            });
        }
    }
    // Remaining members are cut from this level.
    for &m in &leftovers[next_leftover..] {
        extents[m as usize][start] = pos as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::string::paper_example;
    use crate::{is_solid, Alphabet};

    #[test]
    fn rejects_invalid_z() {
        let x = paper_example();
        assert!(ZEstimation::build(&x, 0.5).is_err());
        assert!(ZEstimation::build(&x, f64::NAN).is_err());
        assert!(ZEstimation::build(&x, f64::INFINITY).is_err());
        assert!(ZEstimation::build(&x, 1.0).is_ok());
    }

    #[test]
    fn paper_example_z4_counts() {
        // Example 4 of the paper: for z = 4, P = AB at position 1 (1-based)
        // occurs in exactly 2 strands respecting the property.
        let x = paper_example();
        let est = ZEstimation::build(&x, 4.0).unwrap();
        assert_eq!(est.num_strands(), 4);
        assert_eq!(est.count_bytes(b"AB", 0).unwrap(), 2);
        // AAAA at position 1 (1-based) has probability 0.3 → ⌊1.2⌋ = 1.
        assert_eq!(est.count_bytes(b"AAAA", 0).unwrap(), 1);
        // ABAB at position 1 has probability 3/40 → 0.
        assert_eq!(est.count_bytes(b"ABAB", 0).unwrap(), 0);
        // Single letters at position 2 (1-based): both A and B have p = 1/2 → 2 strands each.
        assert_eq!(est.count_bytes(b"A", 1).unwrap(), 2);
        assert_eq!(est.count_bytes(b"B", 1).unwrap(), 2);
    }

    #[test]
    fn paper_example_full_contract() {
        let x = paper_example();
        for z in [1.0, 2.0, 3.0, 4.0, 5.5, 8.0, 16.0] {
            let est = ZEstimation::build(&x, z).unwrap();
            est.verify_contract(&x, x.len()).unwrap();
        }
    }

    #[test]
    fn deterministic_string_estimation() {
        let x = WeightedString::deterministic(Alphabet::dna(), b"ACGTACGTAC").unwrap();
        let est = ZEstimation::build(&x, 7.0).unwrap();
        assert_eq!(est.num_strands(), 7);
        for strand in est.strands() {
            // Every strand spells the text and covers everything.
            assert_eq!(strand.seq(), x.alphabet().encode(b"ACGTACGTAC").unwrap().as_slice());
            assert_eq!(strand.extent(0), 10);
            assert_eq!(strand.extent(9), 10);
        }
        est.verify_contract(&x, 10).unwrap();
    }

    #[test]
    fn uniform_positions_split_strands_evenly() {
        // Two positions, uniform over {A, B}; z = 4 → each of AA, AB, BA, BB
        // must appear in exactly one strand.
        let alphabet = Alphabet::new(b"AB").unwrap();
        let x = WeightedString::from_rows(alphabet, &[vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        let est = ZEstimation::build(&x, 4.0).unwrap();
        est.verify_contract(&x, 2).unwrap();
        for pattern in [[0u8, 0], [0, 1], [1, 0], [1, 1]] {
            assert_eq!(est.count(&pattern, 0), 1, "pattern {pattern:?}");
        }
    }

    #[test]
    fn completeness_every_solid_factor_is_covered() {
        // Randomised check on a slightly larger string.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let alphabet = Alphabet::new(b"AB").unwrap();
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|_| {
                let p: f64 = rng.gen_range(0.0..=1.0);
                vec![p, 1.0 - p]
            })
            .collect();
        let x = WeightedString::from_rows(alphabet, &rows).unwrap();
        for z in [2.0, 4.0, 9.0] {
            let est = ZEstimation::build(&x, z).unwrap();
            // For a sample of positions and lengths, solid factors must occur
            // in ≥ 1 strand and non-solid ones in 0 strands.
            for start in 0..x.len() {
                for len in 1..=(x.len() - start).min(10) {
                    // Check the heavy-ish pattern built by taking argmax letters.
                    let pattern: Vec<u8> = (start..start + len)
                        .map(|i| if x.prob(i, 0) >= x.prob(i, 1) { 0u8 } else { 1u8 })
                        .collect();
                    let p = x.occurrence_probability(start, &pattern);
                    let count = est.count(&pattern, start);
                    assert_eq!(count, solid_multiplicity(p, z) as usize);
                    if is_solid(p, z) {
                        assert!(count >= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn strands_are_sound() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let alphabet = Alphabet::dna();
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|_| {
                let mut v: Vec<f64> = (0..4).map(|_| rng.gen_range(0.01..1.0)).collect();
                let s: f64 = v.iter().sum();
                v.iter_mut().for_each(|p| *p /= s);
                v
            })
            .collect();
        let x = WeightedString::from_rows(alphabet, &rows).unwrap();
        for z in [1.0, 3.0, 8.0, 20.0] {
            let est = ZEstimation::build(&x, z).unwrap();
            for strand in est.strands() {
                strand.verify_sound(&x, z).unwrap();
            }
        }
    }

    #[test]
    fn memory_reporting_is_positive_and_scales() {
        let x = paper_example();
        let small = ZEstimation::build(&x, 2.0).unwrap().memory_bytes();
        let large = ZEstimation::build(&x, 16.0).unwrap().memory_bytes();
        assert!(small > 0);
        assert!(large > small);
    }
}
