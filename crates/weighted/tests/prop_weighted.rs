//! Property-based tests for the weighted-string model.
//!
//! These tests exercise the defining contracts of the core objects on random
//! weighted strings: the z-estimation counting identity (Theorem 2), the
//! soundness of property strands, Lemma 3 (heavy-string mismatch bound) and
//! agreement between the naive matcher and first principles.

use ius_weighted::heavy::max_solid_mismatches;
use ius_weighted::property::derive_maximal_property;
use ius_weighted::solid::{occurrences, SolidFactorSet};
use ius_weighted::{
    is_solid, solid_multiplicity, Alphabet, HeavyString, WeightedString, ZEstimation,
};
use proptest::prelude::*;

/// Strategy: a random weighted string over a binary or DNA alphabet.
fn weighted_string_strategy(max_len: usize, sigma: usize) -> impl Strategy<Value = WeightedString> {
    let letters = prop::collection::vec(prop::collection::vec(0.01f64..1.0, sigma), 1..=max_len);
    letters.prop_map(move |rows| {
        let alphabet = Alphabet::integer(sigma).unwrap();
        let rows: Vec<Vec<f64>> = rows
            .into_iter()
            .map(|row| {
                let total: f64 = row.iter().sum();
                row.into_iter().map(|p| p / total).collect()
            })
            .collect();
        WeightedString::from_rows(alphabet, &rows).unwrap()
    })
}

/// Strategy: a "peaked" weighted string — most of the mass on one letter —
/// which produces long solid factors (the pangenome-like regime).
fn peaked_string_strategy(max_len: usize, sigma: usize) -> impl Strategy<Value = WeightedString> {
    let rows = prop::collection::vec((0usize..sigma, 0.0f64..0.3), 1..=max_len);
    rows.prop_map(move |rows| {
        let alphabet = Alphabet::integer(sigma).unwrap();
        let rows: Vec<Vec<f64>> = rows
            .into_iter()
            .map(|(major, minor_mass)| {
                let mut row = vec![minor_mass / (sigma as f64 - 1.0); sigma];
                row[major] = 1.0 - minor_mass;
                row
            })
            .collect();
        WeightedString::from_rows(alphabet, &rows).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The z-estimation satisfies its exact-counting contract on every factor
    /// (checked exhaustively up to length 6).
    #[test]
    fn zestimation_contract_binary(x in weighted_string_strategy(14, 2), z in 1.0f64..12.0) {
        let est = ZEstimation::build(&x, z).unwrap();
        prop_assert_eq!(est.num_strands(), z.floor() as usize);
        est.verify_contract(&x, 6).unwrap();
    }

    /// Same contract over a 4-letter alphabet with peaked distributions.
    #[test]
    fn zestimation_contract_dna(x in peaked_string_strategy(20, 4), z in 1.0f64..20.0) {
        let est = ZEstimation::build(&x, z).unwrap();
        est.verify_contract(&x, 5).unwrap();
    }

    /// Completeness and soundness stated via the naive matcher: a pattern has
    /// a solid occurrence at `i` iff it occurs (respecting properties) in at
    /// least one strand at `i`.
    #[test]
    fn zestimation_matches_naive_matcher(
        x in weighted_string_strategy(16, 2),
        z in 1.0f64..10.0,
        pattern in prop::collection::vec(0u8..2, 1..6),
    ) {
        let est = ZEstimation::build(&x, z).unwrap();
        let naive = occurrences(&x, &pattern, z);
        for i in 0..x.len() {
            let in_estimation = est.count(&pattern, i) > 0;
            prop_assert_eq!(naive.contains(&i), in_estimation, "position {}", i);
        }
    }

    /// Lemma 3: every solid factor differs from the heavy string in at most
    /// ⌊log₂ z⌋ positions.
    #[test]
    fn heavy_mismatch_bound(x in weighted_string_strategy(16, 3), z in 1.0f64..32.0) {
        let heavy = HeavyString::new(&x);
        let bound = max_solid_mismatches(z);
        let factors = SolidFactorSet::right_maximal(&x, z);
        for f in factors.factors() {
            prop_assert!(heavy.mismatches(f.start, &f.letters) <= bound);
        }
    }

    /// The derived maximal property of any strand-like sequence is sound and
    /// pointwise maximal.
    #[test]
    fn derived_property_is_sound_and_maximal(
        x in weighted_string_strategy(16, 2),
        z in 1.0f64..10.0,
        seed in prop::collection::vec(0u8..2, 16),
    ) {
        let seq: Vec<u8> = (0..x.len()).map(|i| seed[i % seed.len()]).collect();
        let ps = derive_maximal_property(seq.clone(), &x, z).unwrap();
        ps.verify_sound(&x, z).unwrap();
        for i in 0..x.len() {
            let e = ps.extent(i);
            if e < x.len() {
                // Extending by one more position must not be solid.
                let p = x.occurrence_probability(i, &seq[i..e + 1]);
                prop_assert!(!is_solid(p, z));
            }
        }
    }

    /// The naive matcher agrees with direct probability computation.
    #[test]
    fn naive_matcher_definition(
        x in weighted_string_strategy(20, 2),
        z in 1.0f64..16.0,
        pattern in prop::collection::vec(0u8..2, 1..5),
    ) {
        let occ = occurrences(&x, &pattern, z);
        for i in 0..x.len() {
            let solid = pattern.len() + i <= x.len()
                && is_solid(x.occurrence_probability(i, &pattern), z);
            prop_assert_eq!(occ.contains(&i), solid);
        }
    }

    /// Multiplicities are monotone under factor extension: appending a letter
    /// can only decrease ⌊p·z⌋.
    #[test]
    fn multiplicity_monotone_under_extension(
        x in weighted_string_strategy(12, 2),
        z in 1.0f64..10.0,
    ) {
        for start in 0..x.len() {
            let mut p = 1.0;
            let mut last = z.floor() as u64;
            for i in start..x.len() {
                // Follow the heavier letter greedily.
                let d = x.distribution(i);
                let c = if d[0] >= d[1] { 0 } else { 1 };
                p *= d[c];
                let m = solid_multiplicity(p, z);
                prop_assert!(m <= last);
                last = m;
            }
        }
    }

    /// Maximal solid factors: each is solid, non-extensible, and its every
    /// position is covered by the factor probability definition.
    #[test]
    fn maximal_factors_are_consistent(x in peaked_string_strategy(24, 4), z in 1.0f64..16.0) {
        let set = SolidFactorSet::maximal(&x, z);
        for f in set.factors() {
            let p = x.occurrence_probability(f.start, &f.letters);
            prop_assert!(is_solid(p, z));
            prop_assert!((p - f.probability).abs() <= 1e-9 * p.max(1e-300));
            prop_assert!(f.end() < x.len());
        }
    }
}
