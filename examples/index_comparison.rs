//! Side-by-side comparison of every index on one dataset: size, construction
//! time, construction space (peak heap) and average query time — a miniature,
//! human-readable version of the paper's evaluation (the full reproduction
//! lives in `crates/bench`).
//!
//! Run with `cargo run --release --example index_comparison -- [ell]`.

use ius::prelude::*;
use ius_memtrack::measure;
use std::time::Instant;

/// A boxed build recipe so all indexes can be driven uniformly.
type Builder<'a> = Box<dyn Fn() -> Box<dyn UncertainIndex> + 'a>;

fn main() {
    let ell: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let dataset = ius::datasets::registry::sars_star(Scale::Tiny);
    let x = dataset.weighted.clone();
    let z = 128.0;
    println!(
        "dataset {} (n = {}, σ = {}, Δ = {:.1}%), z = {z}, ℓ = {ell}",
        dataset.name,
        x.len(),
        x.sigma(),
        dataset.delta_percent()
    );

    let est = ZEstimation::build(&x, z).expect("z-estimation");
    let params = IndexParams::new(z, ell, x.sigma()).expect("params");
    let mut sampler = PatternSampler::new(&est, 2024);
    let patterns = sampler.sample_many(ell, 200);
    println!("{} query patterns of length {ell}\n", patterns.len());

    let builders: Vec<(&str, Builder)> = vec![
        (
            "WST",
            Box::new(|| Box::new(Wst::build_from_estimation(&est).unwrap())),
        ),
        (
            "WSA",
            Box::new(|| Box::new(Wsa::build_from_estimation(&est).unwrap())),
        ),
        (
            "MWST",
            Box::new(|| {
                Box::new(
                    MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Tree)
                        .unwrap(),
                )
            }),
        ),
        (
            "MWSA",
            Box::new(|| {
                Box::new(
                    MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Array)
                        .unwrap(),
                )
            }),
        ),
        (
            "MWST-G",
            Box::new(|| {
                Box::new(
                    MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::TreeGrid)
                        .unwrap(),
                )
            }),
        ),
        (
            "MWSA-G",
            Box::new(|| {
                Box::new(
                    MinimizerIndex::build_from_estimation(
                        &x,
                        &est,
                        params,
                        IndexVariant::ArrayGrid,
                    )
                    .unwrap(),
                )
            }),
        ),
        (
            "MWST-SE",
            Box::new(|| {
                Box::new(
                    SpaceEfficientBuilder::new(params)
                        .build(&x, IndexVariant::Tree)
                        .unwrap(),
                )
            }),
        ),
    ];

    println!(
        "{:<8} {:>12} {:>14} {:>16} {:>14} {:>12}",
        "index", "size (KB)", "build (ms)", "peak heap (KB)", "query (µs)", "occ total"
    );
    let naive = NaiveIndex::new(z).unwrap();
    let mut expected_total = 0usize;
    for p in &patterns {
        expected_total += naive.query(p, &x).unwrap().len();
    }
    for (name, build) in &builders {
        let start = Instant::now();
        let (index, mem) = measure(build);
        let build_time = start.elapsed();
        let t = Instant::now();
        let mut total = 0usize;
        for p in &patterns {
            total += index.query(p, &x).expect("query").len();
        }
        let per_query = t.elapsed().as_micros() as f64 / patterns.len().max(1) as f64;
        assert_eq!(
            total, expected_total,
            "{name} disagrees with the naive matcher"
        );
        println!(
            "{:<8} {:>12.1} {:>14.1} {:>16.1} {:>14.2} {:>12}",
            name,
            index.size_bytes() as f64 / 1e3,
            build_time.as_secs_f64() * 1e3,
            mem.peak_bytes as f64 / 1e3,
            per_query,
            total
        );
    }
    println!("\n(peak heap is 0 unless the binary installs ius_memtrack::CountingAllocator as its global allocator; the `reproduce` benchmark binary does.)");
}
