//! Pangenome read-mapping scenario: index a collection of closely related
//! genomes represented as one uncertain string (reference + allele
//! frequencies) and map sequencing reads onto it.
//!
//! This mirrors the paper's motivating bioinformatics application: the
//! pattern lower bound ℓ corresponds to the read length, so the minimizer
//! index can be orders of magnitude smaller than the classic weighted suffix
//! array while answering the same queries.
//!
//! Run with `cargo run --release --example pangenome_search`.

use ius::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Simulates sequencing reads: solid factors of the uncertain string with a
/// few per-read errors injected at a configurable rate.
fn simulate_reads(
    est: &ZEstimation,
    read_len: usize,
    count: usize,
    error_rate: f64,
    sigma: usize,
    seed: u64,
) -> Vec<Vec<u8>> {
    let mut sampler = PatternSampler::new(est, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut reads = sampler.sample_many(read_len, count);
    for read in reads.iter_mut() {
        for slot in read.iter_mut() {
            if rng.gen_bool(error_rate) {
                *slot = rng.gen_range(0..sigma as u8);
            }
        }
    }
    reads
}

fn main() {
    // An E. faecium-like pangenome stand-in (Δ ≈ 6 %).
    let dataset = ius::datasets::registry::efm_star(Scale::Tiny);
    let x = &dataset.weighted;
    let z = 64.0;
    let read_len = 128usize; // ℓ: the shortest read we promise to support.
    println!(
        "pangenome: n = {}, sigma = {}, Δ = {:.1}%, z = {z}, read length ≥ {read_len}",
        x.len(),
        x.sigma(),
        dataset.delta_percent()
    );

    let t0 = Instant::now();
    let est = ZEstimation::build(x, z).expect("z-estimation");
    println!(
        "z-estimation: {} strands, {:.1} MB, built in {:.2?}",
        est.num_strands(),
        est.memory_bytes() as f64 / 1e6,
        t0.elapsed()
    );

    // The practical pipeline recommended by the paper (Section 7.4):
    // construct with MWST-SE, query the array variant.
    let params = IndexParams::new(z, read_len, x.sigma()).expect("params");
    let t1 = Instant::now();
    let index = SpaceEfficientBuilder::new(params)
        .build(x, IndexVariant::Array)
        .expect("space-efficient construction");
    println!(
        "MWSA via MWST-SE: {:.1} MB, {} sampled factors, built in {:.2?}",
        index.size_bytes() as f64 / 1e6,
        index.num_sampled_factors(),
        t1.elapsed()
    );

    // The baseline for comparison.
    let t2 = Instant::now();
    let wsa = Wsa::build_from_estimation(&est).expect("WSA");
    println!(
        "WSA baseline:     {:.1} MB, built in {:.2?} (plus the z-estimation above)",
        wsa.size_bytes() as f64 / 1e6,
        t2.elapsed()
    );

    // Map perfect reads and noisy reads.
    for (label, error_rate) in [("error-free", 0.0), ("0.2% errors", 0.002)] {
        let reads = simulate_reads(&est, read_len, 200, error_rate, x.sigma(), 99);
        let t = Instant::now();
        let mut mapped = 0usize;
        let mut total_hits = 0usize;
        for read in &reads {
            let hits = index.query(read, x).expect("query");
            let baseline = wsa.query(read, x).expect("baseline query");
            assert_eq!(hits, baseline, "index and baseline disagree");
            if !hits.is_empty() {
                mapped += 1;
                total_hits += hits.len();
            }
        }
        println!(
            "{label}: mapped {mapped}/{} reads ({total_hits} solid occurrences) in {:.2?} \
             ({:.1} µs/read)",
            reads.len(),
            t.elapsed(),
            t.elapsed().as_micros() as f64 / reads.len() as f64 / 2.0,
        );
    }
    println!(
        "index/baseline size ratio: {:.1}×",
        wsa.size_bytes() as f64 / index.size_bytes() as f64
    );
}
