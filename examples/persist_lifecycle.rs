//! The full index lifecycle on disk: build once → measure → save → load →
//! serve, plus a sharded composite index routing the same queries.
//!
//! Run with `cargo run --release --example persist_lifecycle`.
//! CI runs this as the save→load→query round-trip smoke test (the files go
//! to a scratch directory under the system temp dir).

use ius::prelude::*;
use ius_index::{load_index, IndexFamily, IndexSpec, ShardedIndex};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::time::Instant;

fn main() {
    // A synthetic pangenome and a family selection to persist.
    let x = PangenomeConfig {
        n: 20_000,
        delta: 0.05,
        seed: 0xD15C,
        ..Default::default()
    }
    .generate();
    let (z, ell) = (16.0, 64usize);
    let params = IndexParams::new(z, ell, x.sigma()).expect("valid parameters");
    let est = ZEstimation::build(&x, z).expect("estimation");
    let mut sampler = PatternSampler::new(&est, 7);
    let patterns = sampler.sample_many(ell, 25);
    assert!(!patterns.is_empty(), "no solid patterns sampled");

    let dir = std::env::temp_dir().join(format!("ius-lifecycle-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch directory");
    println!("scratch directory: {}", dir.display());

    for family in [
        IndexFamily::Wsa,
        IndexFamily::Minimizer(IndexVariant::Array),
        IndexFamily::Minimizer(IndexVariant::ArrayGrid),
    ] {
        let spec = IndexSpec::new(family, params);

        // Build (once) and measure.
        let t = Instant::now();
        let index = spec.build_with_estimation(&x, &est).expect("build");
        let build_ms = t.elapsed().as_secs_f64() * 1e3;

        // Save to disk (buffered, like the read side below).
        let path = dir.join(format!("{}.iusx", family.name().to_lowercase()));
        let mut writer = BufWriter::new(File::create(&path).expect("create index file"));
        index.save_to(&mut writer).expect("save");
        writer.flush().expect("flush");
        let file_bytes = std::fs::metadata(&path).expect("stat").len();

        // Load from disk — no construction is re-run.
        let t = Instant::now();
        let mut reader = BufReader::new(File::open(&path).expect("open index file"));
        let loaded = load_index(&mut reader).expect("load");
        let load_ms = t.elapsed().as_secs_f64() * 1e3;

        // Serve: the loaded index answers exactly like the built one.
        let mut total = 0usize;
        for pattern in &patterns {
            let expected = index.query(pattern, &x).expect("query");
            let got = loaded.query(pattern, &x).expect("loaded query");
            assert_eq!(got, expected, "loaded index diverged");
            total += got.len();
        }
        println!(
            "{:<8} build {build_ms:>8.1} ms   size {:>7.2} MB   file {:>7.2} MB   \
             load {load_ms:>6.1} ms   {} occurrences over {} patterns",
            family.name(),
            index.size_bytes() as f64 / 1e6,
            file_bytes as f64 / 1e6,
            total,
            patterns.len(),
        );
    }

    // A sharded composite index: 4 chunks with a 2ℓ−1 overlap, answers
    // asserted identical to the unsharded index, then saved and reloaded.
    let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params);
    let unsharded = spec.build_with_estimation(&x, &est).expect("unsharded");
    let sharded = ShardedIndex::build(&x, spec, 4, 2 * ell).expect("sharded build");
    for pattern in &patterns {
        assert_eq!(
            sharded.query(pattern, &x).expect("sharded query"),
            unsharded.query(pattern, &x).expect("unsharded query"),
        );
    }
    let path = dir.join("mwsa-g.sharded.iusx");
    let mut writer = BufWriter::new(File::create(&path).expect("create sharded file"));
    sharded.save_to(&mut writer).expect("save sharded");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(File::open(&path).expect("open sharded file"));
    let reloaded = ShardedIndex::load_from(&mut reader).expect("load sharded");
    for pattern in &patterns {
        assert_eq!(
            reloaded.query(pattern, &x).expect("reloaded query"),
            unsharded.query(pattern, &x).expect("unsharded query"),
        );
    }
    println!(
        "SHARDED  S={} overlap={}   size {:>7.2} MB   round-trip OK",
        sharded.num_shards(),
        sharded.overlap(),
        sharded.size_bytes() as f64 / 1e6,
    );

    std::fs::remove_dir_all(&dir).expect("clean scratch directory");
    println!("lifecycle round trip complete; scratch directory removed");
}
