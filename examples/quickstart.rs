//! Quickstart: build every index over the paper's running example and a small
//! synthetic pangenome, and compare their answers and sizes.
//!
//! Run with `cargo run --release --example quickstart`.

use ius::prelude::*;
use ius::weighted::string::paper_example;

fn main() {
    // ---------------------------------------------------------------
    // 1. The running example of the paper (Example 1): n = 6, Σ = {A, B}.
    // ---------------------------------------------------------------
    let x = paper_example();
    let z = 4.0;
    println!(
        "== Paper running example (n = {}, sigma = {}, z = {z}) ==",
        x.len(),
        x.sigma()
    );

    // Its 4-estimation (Table 1 of the paper).
    let est = ZEstimation::build(&x, z).expect("valid threshold");
    for (j, strand) in est.strands().iter().enumerate() {
        let letters: String = strand
            .seq()
            .iter()
            .map(|&r| x.alphabet().symbol(r) as char)
            .collect();
        let pi: Vec<usize> = (0..x.len())
            .map(|i| strand.pi(i).map_or(0, |v| v + 1))
            .collect();
        println!("  S{} = {}   pi = {:?}", j + 1, letters, pi);
    }
    // Count_S(AB, position 1) = 2 (Example 4).
    println!("  Count_S(AB, 1) = {}", est.count_bytes(b"AB", 0).unwrap());

    // Occurrence probabilities and solid occurrences of AAAA (Example 6).
    let p = x.occurrence_probability_bytes(0, b"AAAA").unwrap();
    println!(
        "  P(X[1..4] = AAAA) = {p}   (solid for z = 4: {})",
        ius::weighted::is_solid(p, z)
    );

    // ---------------------------------------------------------------
    // 2. A synthetic pangenome, indexed by every method of the paper.
    // ---------------------------------------------------------------
    let x = PangenomeConfig {
        n: 20_000,
        delta: 0.05,
        seed: 42,
        ..Default::default()
    }
    .generate();
    let z = 32.0;
    let ell = 64usize;
    println!();
    println!(
        "== Synthetic pangenome (n = {}, Δ = {:.1}%, z = {z}, ℓ = {ell}) ==",
        x.len(),
        x.uncertainty_fraction() * 100.0
    );

    let est = ZEstimation::build(&x, z).expect("valid threshold");
    println!(
        "  z-estimation size: {:.1} MB",
        est.memory_bytes() as f64 / 1e6
    );

    let params = IndexParams::new(z, ell, x.sigma()).expect("valid parameters");
    let wst = Wst::build_from_estimation(&est).expect("WST");
    let wsa = Wsa::build_from_estimation(&est).expect("WSA");
    let mwst =
        MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Tree).expect("MWST");
    let mwsa =
        MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Array).expect("MWSA");
    let mwsa_g = MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::ArrayGrid)
        .expect("MWSA-G");
    let mwst_se = SpaceEfficientBuilder::new(params)
        .build(&x, IndexVariant::Array)
        .expect("MWST-SE");

    let naive = NaiveIndex::new(z).expect("naive");
    let mut sampler = PatternSampler::new(&est, 7);
    let patterns = sampler.sample_many(ell, 50);
    println!(
        "  sampled {} query patterns of length {ell}",
        patterns.len()
    );

    let indexes: Vec<(&str, &(dyn UncertainIndex + Sync))> = vec![
        ("WST", &wst),
        ("WSA", &wsa),
        ("MWST", &mwst),
        ("MWSA", &mwsa),
        ("MWSA-G", &mwsa_g),
        ("MWSA (space-efficient construction)", &mwst_se),
    ];
    println!(
        "  {:<40} {:>12} {:>12}",
        "index", "size (KB)", "occurrences"
    );
    let mut total_naive = 0usize;
    for p in &patterns {
        total_naive += naive.query(p, &x).unwrap().len();
    }
    for (name, index) in &indexes {
        // The serving path: one reused scratch, a reused output vector —
        // steady-state queries allocate nothing.
        let mut scratch = QueryScratch::new();
        let mut occ: Vec<usize> = Vec::new();
        let mut total = 0usize;
        for p in &patterns {
            occ.clear();
            index
                .query_into(p, &x, &mut scratch, &mut occ)
                .expect("query succeeds");
            total += occ.len();
        }
        assert_eq!(
            total, total_naive,
            "{name} disagrees with the naive matcher"
        );
        println!(
            "  {:<40} {:>12.1} {:>12}",
            name,
            index.size_bytes() as f64 / 1e3,
            total
        );
    }
    println!("  all indexes agree with the naive matcher ({total_naive} occurrences in total)");

    // ---------------------------------------------------------------
    // 3. The batched engine and the non-collecting sinks.
    // ---------------------------------------------------------------
    println!();
    println!("== Batched queries and match sinks ==");
    // Answer the whole pattern set over MWSA-G with per-worker scratch;
    // results come back in pattern order no matter how work is scheduled.
    let executor = QueryBatch::new();
    let batched = query_batch(&mwsa_g, &patterns, &x, &executor);
    let batched_total: usize = batched
        .iter()
        .map(|entry| entry.as_ref().expect("valid pattern").0.len())
        .sum();
    assert_eq!(batched_total, total_naive);
    println!(
        "  QueryBatch over {} workers: {} occurrences (identical to single-shot)",
        executor.threads(),
        batched_total
    );
    // Count-only and first-k sinks skip materialising positions.
    let mut scratch = QueryScratch::new();
    let mut count = CountSink::new();
    let stats = mwsa_g
        .query_into(&patterns[0], &x, &mut scratch, &mut count)
        .expect("count query");
    let mut first = FirstKSink::new(1);
    mwsa_g
        .query_into(&patterns[0], &x, &mut scratch, &mut first)
        .expect("first-k query");
    println!(
        "  pattern 0: {} occurrence(s), first at {:?}; {} grid candidate(s), {} grid node(s)",
        count.count,
        first.positions.first(),
        stats.candidates,
        stats.grid_nodes
    );

    // ---------------------------------------------------------------
    // 4. A live (mutable) corpus: append, query, compact — no rebuild.
    // ---------------------------------------------------------------
    println!();
    println!("== Live appends (ius_live) ==");
    // Serve the first half of the corpus, then append the second half in
    // batches: every appended row is visible to the very next query.
    let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params);
    let half = x.len() / 2;
    let live = LiveIndex::from_corpus(
        &x.substring(0, half).expect("first half"),
        spec,
        2 * ell,
        LiveConfig {
            flush_threshold: 2_000,
            ..Default::default()
        },
    )
    .expect("seed live index");
    let mut appended = half;
    while appended < x.len() {
        let end = (appended + 2_500).min(x.len());
        live.append(&x.substring(appended, end).expect("batch"))
            .expect("append");
        appended = end;
    }
    live.flush().expect("flush the tail");
    // The grown live index answers exactly like the static index built
    // over the full corpus.
    let mut live_total = 0usize;
    for p in &patterns {
        let hits = live.query_owned(p).expect("live query");
        assert_eq!(hits, mwsa_g.query(p, &x).unwrap(), "live disagrees");
        live_total += hits.len();
    }
    let stats = live.live_stats();
    println!(
        "  appended {} -> {} positions across {} segment(s) (+{} memtable rows): \
         {live_total} occurrences, identical to the static MWSA-G",
        half, stats.corpus_len, stats.segments, stats.memtable_rows
    );
    live.compact_full().expect("compact");
    for p in patterns.iter().take(5) {
        assert_eq!(live.query_owned(p).unwrap(), mwsa_g.query(p, &x).unwrap());
    }
    println!(
        "  compacted to {} segment(s); answers unchanged",
        live.num_segments()
    );
}
