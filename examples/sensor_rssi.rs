//! Sensor-telemetry scenario: index an uncertain string of discretised signal
//! strength (RSSI) readings, where every time step is a distribution over
//! σ = 91 values estimated from 16 radio channels, and search for recurring
//! signal-strength motifs.
//!
//! This mirrors the paper's RSSI dataset (Δ = 100 %: every position is
//! uncertain) and its scaled variants RSSI_{n,σ}, which drive Figures 14 and
//! 16 of the evaluation.
//!
//! Run with `cargo run --release --example sensor_rssi`.

use ius::prelude::*;
use std::time::Instant;

fn main() {
    let z = 16.0;
    let ell = 32usize;

    println!(
        "{:<12} {:>8} {:>6} {:>14} {:>14} {:>12}",
        "dataset", "n", "σ", "MWSA-SE (KB)", "WSA (KB)", "ratio"
    );
    for sigma in [16usize, 32, 64, 91] {
        let x = RssiConfig {
            n: 20_000,
            sigma,
            seed: 7,
            ..Default::default()
        }
        .generate();
        let params = IndexParams::new(z, ell, x.sigma()).expect("params");

        let t = Instant::now();
        let index = SpaceEfficientBuilder::new(params)
            .build(&x, IndexVariant::Array)
            .expect("space-efficient construction");
        let se_time = t.elapsed();

        let t = Instant::now();
        let est = ZEstimation::build(&x, z).expect("z-estimation");
        let wsa = Wsa::build_from_estimation(&est).expect("WSA");
        let baseline_time = t.elapsed();

        println!(
            "{:<12} {:>8} {:>6} {:>14.1} {:>14.1} {:>11.1}×   (construction {:.2?} vs {:.2?})",
            format!("RSSI*_{{1,{sigma}}}"),
            x.len(),
            sigma,
            index.size_bytes() as f64 / 1e3,
            wsa.size_bytes() as f64 / 1e3,
            wsa.size_bytes() as f64 / index.size_bytes() as f64,
            se_time,
            baseline_time,
        );

        // Search for a motif: the most likely signal pattern around the middle
        // of the recording, and a perturbed (likely absent) variant.
        let heavy = HeavyString::new(&x);
        let motif: Vec<u8> = heavy.as_ranks()[10_000..10_000 + ell].to_vec();
        let occ = index.query(&motif, &x).expect("query");
        let baseline_occ = wsa.query(&motif, &x).expect("baseline query");
        assert_eq!(occ, baseline_occ);
        let mut shifted = motif.clone();
        for v in shifted.iter_mut() {
            *v = (*v + 7) % sigma as u8;
        }
        let absent = index.query(&shifted, &x).expect("query");
        println!(
            "             heavy motif of length {ell} occurs at {} positions; a shifted motif at {}",
            occ.len(),
            absent.len()
        );
    }
}
