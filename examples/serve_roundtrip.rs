//! Serving round trip: build an index, persist it, serve it from the file
//! on an ephemeral loopback port, query it through the wire client and
//! check every answer against the in-process engine — then hot-reload and
//! shut down gracefully.
//!
//! Run with `cargo run --release --example serve_roundtrip`.
//! CI runs this as the serving smoke test.

use ius::prelude::*;
use std::sync::Arc;

fn main() {
    // A synthetic pangenome, indexed as MWSA-G for patterns of length ≥ 32.
    let x = PangenomeConfig {
        n: 20_000,
        delta: 0.05,
        seed: 0x5E12,
        ..Default::default()
    }
    .generate();
    let (z, ell) = (16.0, 32usize);
    let params = IndexParams::new(z, ell, x.sigma()).expect("valid parameters");
    let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params);
    let index = spec.build(&x).expect("build");

    let est = ZEstimation::build(&x, z).expect("estimation");
    let mut sampler = PatternSampler::new(&est, 21);
    let patterns = sampler.sample_many(ell, 40);
    assert!(!patterns.is_empty(), "no solid patterns sampled");

    // Persist, then serve from the file — the server process of a real
    // deployment would start exactly here.
    let dir = std::env::temp_dir().join(format!("ius-serve-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch directory");
    let path = dir.join("mwsa-g.iusx");
    index
        .save_to(&mut std::fs::File::create(&path).expect("create index file"))
        .expect("save");
    println!("persisted {} to {}", index.name(), path.display());

    let served = ServedIndex::load(&path, Some(Arc::new(x.clone()))).expect("load for serving");
    let server = Server::bind(
        "127.0.0.1:0", // ephemeral port
        served,
        Some(path.clone()),
        &ServerConfig {
            workers: 2,
            queue_depth: 8,
            ..Default::default()
        },
    )
    .expect("bind");
    println!("serving on {}", server.local_addr());

    // Query over the wire; every answer must equal the in-process one.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");
    let mut total = 0usize;
    for pattern in &patterns {
        let expected = index.query(pattern, &x).expect("in-process query");
        let outcome = client.query(pattern).expect("served query");
        assert_eq!(outcome.positions, expected, "served answer differs");
        let (count, _) = client.query_count(pattern).expect("count query");
        assert_eq!(count as usize, expected.len());
        total += expected.len();
    }
    println!(
        "{} patterns, {} occurrences — wire answers identical to in-process",
        patterns.len(),
        total
    );

    // Hot reload from the same file: the generation advances and queries
    // keep working without restarting the server.
    let generation = client.reload(None).expect("hot reload");
    let snapshot = client.stats().expect("stats");
    println!(
        "hot reload done: generation {generation}, {} queries served, {} occurrences delivered",
        snapshot.queries, snapshot.occurrences
    );
    assert_eq!(generation, 1);
    assert_eq!(
        client
            .query(&patterns[0])
            .expect("post-reload query")
            .positions,
        index.query(&patterns[0], &x).expect("in-process query")
    );

    client.shutdown().expect("graceful shutdown");
    server.join();
    println!("server shut down gracefully");
    std::fs::remove_dir_all(&dir).ok();
}
