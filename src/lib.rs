//! # ius — space-efficient indexes for uncertain strings
//!
//! A from-scratch Rust implementation of *"Space-Efficient Indexes for
//! Uncertain Strings"* (ICDE 2024): indexing a string whose characters are
//! probability distributions (a *weighted / uncertain string*) so that all
//! positions where a pattern occurs with probability at least `1/z` can be
//! reported quickly — with an index that is up to two orders of magnitude
//! smaller than the classic weighted suffix tree / array when a lower bound
//! `ℓ` on the pattern length is known.
//!
//! The workspace is organised as one crate per subsystem; this umbrella crate
//! re-exports the public API:
//!
//! * [`weighted`] — the uncertain-string model (distributions, heavy strings,
//!   solid factors, z-estimations);
//! * [`sampling`] — (ℓ, k)-minimizer schemes;
//! * [`text`] — suffix arrays / trees / compacted tries / LCE structures;
//! * [`grid`] — 2D range reporting;
//! * [`index`] — the indexes themselves: the `WST`/`WSA` baselines and the
//!   paper's `MWST`, `MWSA`, `MWST-G`, `MWSA-G` and the space-efficient
//!   `MWST-SE` construction — plus the lifecycle layers around them: the
//!   unified builder (`IndexSpec` → `AnyIndex`), versioned binary
//!   persistence (`save_index`/`load_index`; loading never re-runs
//!   construction) and sharded composite indexes (`ShardedIndex`);
//! * [`live`] — dynamic segmented indexing: an LSM-style `LiveIndex`
//!   whose corpus grows by appends and shrinks by range tombstones while
//!   being served — immutable segments + memtable tail + background
//!   compaction + `IUSL` manifest persistence;
//! * [`datasets`] — synthetic stand-ins for the paper's datasets and the
//!   pattern samplers used in the evaluation;
//! * [`server`] — the serving subsystem: a std-only concurrent TCP server
//!   (length-prefixed binary wire protocol, worker pool with per-worker
//!   scratch, bounded admission with typed backpressure, atomic hot
//!   reload) plus the matching blocking client and the `serve` binary —
//!   including the live-corpus ops (`APPEND`/`DELETE_RANGE`/`FLUSH`/
//!   `COMPACT`) behind `serve --live`.
//!
//! ## Quickstart
//!
//! ```
//! use ius::prelude::*;
//!
//! // An uncertain DNA string: a reference with SNP allele frequencies.
//! let x = PangenomeConfig { n: 2_000, delta: 0.05, seed: 7, ..Default::default() }.generate();
//!
//! // Index it for patterns of length ≥ 32 with weight threshold 1/16.
//! let params = IndexParams::new(16.0, 32, x.sigma()).unwrap();
//! let index = MinimizerIndex::build(&x, params, IndexVariant::Array).unwrap();
//!
//! // Sample a pattern that is known to occur and query it.
//! let est = ZEstimation::build(&x, 16.0).unwrap();
//! let pattern = PatternSampler::new(&est, 1).sample(32).unwrap();
//! let occurrences = index.query(&pattern, &x).unwrap();
//! assert!(!occurrences.is_empty());
//!
//! // Every reported position really is a z-solid occurrence.
//! for &pos in &occurrences {
//!     assert!(ius::weighted::is_solid(x.occurrence_probability(pos, &pattern), 16.0));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ius_datasets as datasets;
pub use ius_grid as grid;
pub use ius_index as index;
pub use ius_live as live;
pub use ius_query as query;
pub use ius_sampling as sampling;
pub use ius_server as server;
pub use ius_text as text;
pub use ius_weighted as weighted;

/// The most commonly used types, importable with one `use ius::prelude::*`.
pub mod prelude {
    pub use ius_datasets::pangenome::PangenomeConfig;
    pub use ius_datasets::patterns::PatternSampler;
    pub use ius_datasets::registry::{standard_datasets, Dataset, Scale};
    pub use ius_datasets::rssi::RssiConfig;
    pub use ius_index::{
        load_any_index, load_index, query_batch, query_batch_positions, save_index, AnyIndex,
        CountSink, FirstKSink, IndexFamily, IndexParams, IndexSpec, IndexVariant, LoadedAny,
        MatchSink, MinimizerIndex, NaiveIndex, QueryBatch, QueryScratch, QueryStats, ShardedIndex,
        SpaceEfficientBuilder, UncertainIndex, Wsa, Wst,
    };
    pub use ius_live::{LiveConfig, LiveIndex, LiveStats};
    pub use ius_sampling::{KmerOrder, MinimizerScheme};
    pub use ius_server::{Client, ResultMode, ServedIndex, Server, ServerConfig};
    pub use ius_weighted::{Alphabet, HeavyString, WeightedString, ZEstimation};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn umbrella_reexports_work_together() {
        let x = ius_datasets::uniform::UniformConfig {
            n: 150,
            sigma: 2,
            spread: 0.4,
            seed: 3,
        }
        .generate();
        let params = IndexParams::new(4.0, 8, 2).unwrap();
        let index = MinimizerIndex::build(&x, params, IndexVariant::Tree).unwrap();
        let naive = NaiveIndex::new(4.0).unwrap();
        let pattern = vec![0u8; 8];
        assert_eq!(
            index.query(&pattern, &x).unwrap(),
            naive.query(&pattern, &x).unwrap()
        );
    }
}
