//! End-to-end integration tests over the public `ius` API: every index built
//! on every (small) stand-in dataset answers exactly like the naive matcher,
//! error paths behave, and the headline size relationships of the paper hold.

use ius::prelude::*;
use ius::weighted::solid;

/// Builds one small pangenome-style dataset shared by the tests.
fn small_pangenome() -> WeightedString {
    PangenomeConfig {
        n: 3_000,
        delta: 0.05,
        seed: 0xE2E,
        ..Default::default()
    }
    .generate()
}

#[test]
fn all_indexes_agree_with_naive_on_sampled_and_random_patterns() {
    let x = small_pangenome();
    let z = 32.0;
    let ell = 64usize;
    let est = ZEstimation::build(&x, z).unwrap();
    let params = IndexParams::new(z, ell, x.sigma()).unwrap();

    let wst = Wst::build_from_estimation(&est).unwrap();
    let wsa = Wsa::build_from_estimation(&est).unwrap();
    let mwst = MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Tree).unwrap();
    let mwsa =
        MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Array).unwrap();
    let mwst_g =
        MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::TreeGrid).unwrap();
    let mwsa_g =
        MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::ArrayGrid).unwrap();
    let mwst_se = SpaceEfficientBuilder::new(params)
        .build(&x, IndexVariant::Tree)
        .unwrap();
    let indexes: Vec<&dyn UncertainIndex> =
        vec![&wst, &wsa, &mwst, &mwsa, &mwst_g, &mwsa_g, &mwst_se];

    let mut sampler = PatternSampler::new(&est, 99);
    let mut patterns = sampler.sample_many(ell, 60);
    patterns.extend(sampler.sample_many(ell * 2, 30));
    patterns.extend(sampler.sample_random(ell, 30, x.sigma()));
    assert!(patterns.len() >= 100);

    for pattern in &patterns {
        let expected = solid::occurrences(&x, pattern, z);
        for index in &indexes {
            assert_eq!(
                index.query(pattern, &x).unwrap(),
                expected,
                "{} disagrees on a pattern of length {}",
                index.name(),
                pattern.len()
            );
        }
    }
}

#[test]
fn registry_datasets_are_indexable_end_to_end() {
    for dataset in standard_datasets(Scale::Tiny) {
        let x = &dataset.weighted;
        // Use a reduced z for speed; the shape of the pipeline is identical.
        let z = dataset.default_z.min(32.0);
        let ell = 32usize;
        let est = ZEstimation::build(x, z).unwrap();
        let params = IndexParams::new(z, ell, x.sigma()).unwrap();
        let mwsa =
            MinimizerIndex::build_from_estimation(x, &est, params, IndexVariant::Array).unwrap();
        let wsa = Wsa::build_from_estimation(&est).unwrap();
        let mut sampler = PatternSampler::new(&est, 5);
        let patterns = sampler.sample_many(ell, 10);
        for pattern in &patterns {
            assert_eq!(
                mwsa.query(pattern, x).unwrap(),
                wsa.query(pattern, x).unwrap(),
                "dataset {}",
                dataset.name
            );
        }
        // Table 2 invariants.
        assert!(dataset.n() >= 1_000);
        assert!(dataset.delta_percent() > 0.0);
    }
}

#[test]
fn headline_size_relationships_hold() {
    // The paper's headline: for large ℓ the minimizer indexes are orders of
    // magnitude smaller than the baselines, and array variants are smaller
    // than tree variants.
    let x = PangenomeConfig {
        n: 8_000,
        delta: 0.05,
        seed: 3,
        ..Default::default()
    }
    .generate();
    let z = 64.0;
    let est = ZEstimation::build(&x, z).unwrap();
    let params = IndexParams::new(z, 512, x.sigma()).unwrap();
    let wst = Wst::build_from_estimation(&est).unwrap();
    let wsa = Wsa::build_from_estimation(&est).unwrap();
    let mwst = MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Tree).unwrap();
    let mwsa =
        MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Array).unwrap();

    assert!(
        wst.size_bytes() > wsa.size_bytes(),
        "WST should be larger than WSA"
    );
    assert!(
        mwst.size_bytes() > mwsa.size_bytes(),
        "MWST should be larger than MWSA"
    );
    assert!(
        wsa.size_bytes() as f64 / mwsa.size_bytes() as f64 > 8.0,
        "MWSA should be much smaller than WSA (got {} vs {})",
        mwsa.size_bytes(),
        wsa.size_bytes()
    );
    assert!(
        wst.size_bytes() as f64 / mwst.size_bytes() as f64 > 8.0,
        "MWST should be much smaller than WST (got {} vs {})",
        mwst.size_bytes(),
        wst.size_bytes()
    );
}

#[test]
fn error_paths_are_reported() {
    let x = small_pangenome();
    let params = IndexParams::new(16.0, 64, x.sigma()).unwrap();
    let index = MinimizerIndex::build(&x, params, IndexVariant::Array).unwrap();
    // Too-short and empty patterns.
    assert!(matches!(
        index.query(&[0u8; 10], &x),
        Err(ius::weighted::Error::PatternTooShort { .. })
    ));
    assert!(index.query(&[], &x).is_err());
    // Invalid parameters.
    assert!(IndexParams::new(0.2, 64, 4).is_err());
    assert!(IndexParams::new(16.0, 0, 4).is_err());
    // Grid variants cannot be built space-efficiently.
    assert!(SpaceEfficientBuilder::new(params)
        .build(&x, IndexVariant::ArrayGrid)
        .is_err());
}

#[test]
fn io_roundtrip_through_the_public_api() {
    let dataset = ius::datasets::registry::sars_star(Scale::Tiny);
    let mut buffer = Vec::new();
    ius::datasets::io::write_weighted(&dataset.weighted, &mut buffer).unwrap();
    let roundtripped = ius::datasets::io::read_weighted(&buffer[..]).unwrap();
    assert_eq!(roundtripped.len(), dataset.weighted.len());
    // Indexing the round-tripped string gives the same answers.
    let z = 64.0;
    let est = ZEstimation::build(&roundtripped, z).unwrap();
    let params = IndexParams::new(z, 32, roundtripped.sigma()).unwrap();
    let index =
        MinimizerIndex::build_from_estimation(&roundtripped, &est, params, IndexVariant::Array)
            .unwrap();
    let mut sampler = PatternSampler::new(&est, 8);
    for pattern in sampler.sample_many(32, 10) {
        assert_eq!(
            index.query(&pattern, &roundtripped).unwrap(),
            solid::occurrences(&dataset.weighted, &pattern, z)
        );
    }
}
