//! Error-ergonomics audit: every public error type in the workspace must
//! implement `std::error::Error + Display + Send + Sync`, and its `Display`
//! output must be a real message (non-empty, not a `Debug` placeholder) —
//! compile-time trait assertions plus message spot checks, so regressions
//! fail CI.

use ius::server::{ClientError, ErrorCode, ProtocolError};
use ius::weighted::Error as WeightedError;

/// Compile-time assertion: `T` is a full-featured error type.
fn assert_error_bounds<T: std::error::Error + std::fmt::Display + Send + Sync + 'static>() {}

#[test]
fn every_public_error_enum_satisfies_the_error_bounds() {
    assert_error_bounds::<WeightedError>();
    assert_error_bounds::<ProtocolError>();
    assert_error_bounds::<ClientError>();
    // The persistence layer reports through std::io::Error (typed kinds +
    // messages); it satisfies the same bounds by construction.
    assert_error_bounds::<std::io::Error>();
}

/// A `Display` message is considered a placeholder when it is empty or just
/// the `Debug` variant name (no spaces, no detail).
fn assert_real_message(err: &dyn std::error::Error) {
    let message = err.to_string();
    assert!(!message.is_empty(), "empty Display message");
    assert!(
        message.contains(' '),
        "placeholder-looking Display message: {message:?}"
    );
}

#[test]
fn weighted_error_messages_are_informative() {
    let samples = [
        WeightedError::InvalidAlphabet("duplicate symbol".into()),
        WeightedError::UnknownSymbol(b'q'),
        WeightedError::InvalidDistribution {
            position: 4,
            reason: "sums to 1.2".into(),
        },
        WeightedError::InvalidThreshold(0.5),
        WeightedError::PositionOutOfBounds {
            position: 10,
            length: 5,
        },
        WeightedError::EmptyInput("pattern"),
        WeightedError::InvalidProperty("non-monotone".into()),
        WeightedError::PatternTooShort {
            pattern: 3,
            lower_bound: 8,
        },
        WeightedError::PatternTooLong {
            pattern: 80,
            upper_bound: 64,
        },
        WeightedError::InvalidParameters("k > ell".into()),
    ];
    for err in &samples {
        assert_real_message(err);
    }
    // The numbers that matter appear in the message.
    assert!(WeightedError::PatternTooShort {
        pattern: 3,
        lower_bound: 8
    }
    .to_string()
    .contains('8'));
}

#[test]
fn protocol_error_messages_are_informative() {
    let samples = [
        ProtocolError::BadMagic(*b"XXXX"),
        ProtocolError::UnsupportedVersion(9),
        ProtocolError::UnknownOp(99),
        ProtocolError::UnknownStatus(98),
        ProtocolError::UnknownMode(97),
        ProtocolError::UnknownErrorCode(96),
        ProtocolError::Truncated { what: "pattern" },
        ProtocolError::TrailingBytes(3),
        ProtocolError::FrameTooLarge {
            len: 1 << 40,
            max: 1 << 20,
        },
        ProtocolError::InvalidUtf8,
    ];
    for err in &samples {
        assert_real_message(err);
    }
    assert!(ProtocolError::UnsupportedVersion(9)
        .to_string()
        .contains('9'));
}

#[test]
fn client_error_messages_are_informative_and_chain_sources() {
    let io = ClientError::Io(std::io::Error::new(
        std::io::ErrorKind::ConnectionRefused,
        "nobody listening",
    ));
    assert_real_message(&io);
    assert!(
        std::error::Error::source(&io).is_some(),
        "Io variant must chain its source"
    );
    let proto = ClientError::Protocol(ProtocolError::InvalidUtf8);
    assert_real_message(&proto);
    assert!(std::error::Error::source(&proto).is_some());
    let server = ClientError::Server {
        code: ErrorCode::Overloaded,
        message: "admission queue full".into(),
    };
    assert_real_message(&server);
    assert!(server.to_string().contains("OVERLOADED"));
    assert_real_message(&ClientError::IdMismatch { sent: 4, got: 7 });
    assert_real_message(&ClientError::UnexpectedResponse { expected: "PONG" });
}

#[test]
fn error_codes_display_their_wire_names() {
    for (code, name) in [
        (ErrorCode::Malformed, "MALFORMED"),
        (ErrorCode::UnsupportedVersion, "UNSUPPORTED_VERSION"),
        (ErrorCode::UnknownOp, "UNKNOWN_OP"),
        (ErrorCode::Query, "QUERY_ERROR"),
        (ErrorCode::Reload, "RELOAD_ERROR"),
        (ErrorCode::Overloaded, "OVERLOADED"),
        (ErrorCode::ShuttingDown, "SHUTTING_DOWN"),
    ] {
        assert_eq!(code.to_string(), name);
    }
}
