//! Property-based cross-index tests: on arbitrary random weighted strings and
//! arbitrary thresholds, every index must report exactly the set of z-solid
//! occurrences, and the structural invariants of the paper must hold.

use ius::prelude::*;
use ius::weighted::heavy::max_solid_mismatches;
use ius::weighted::solid;
use proptest::prelude::*;

/// Random weighted string over a small alphabet with moderately peaked
/// distributions (so that solid factors of useful length exist).
fn weighted_string_strategy() -> impl Strategy<Value = WeightedString> {
    (2usize..=3, 40usize..=120, 0u64..1_000_000).prop_map(|(sigma, n, seed)| {
        ius::datasets::uniform::UniformConfig {
            n,
            sigma,
            spread: 0.55,
            seed,
        }
        .generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All six explicitly-constructed indexes and the space-efficient one
    /// agree with the naive matcher on patterns cut from the string itself.
    #[test]
    fn indexes_equal_naive(
        x in weighted_string_strategy(),
        z in 2.0f64..12.0,
        ell_choice in 4usize..=10,
        seed in 0u64..1_000,
    ) {
        let ell = ell_choice;
        let est = ZEstimation::build(&x, z).unwrap();
        let params = IndexParams::new(z, ell, x.sigma()).unwrap();
        let wst = Wst::build_from_estimation(&est).unwrap();
        let wsa = Wsa::build_from_estimation(&est).unwrap();
        let mwsa =
            MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Array).unwrap();
        let mwst_g =
            MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::TreeGrid).unwrap();
        let se = SpaceEfficientBuilder::new(params).build(&x, IndexVariant::Array).unwrap();
        let indexes: Vec<&dyn UncertainIndex> = vec![&wst, &wsa, &mwsa, &mwst_g, &se];

        let mut sampler = PatternSampler::new(&est, seed);
        let mut patterns = sampler.sample_many(ell, 10);
        patterns.extend(sampler.sample_many((ell + 4).min(x.len()), 5));
        patterns.extend(sampler.sample_random(ell, 5, x.sigma()));
        for pattern in &patterns {
            let expected = solid::occurrences(&x, pattern, z);
            for index in &indexes {
                // Baselines accept any pattern length; minimizer indexes only m ≥ ℓ.
                if pattern.len() >= ell || matches!(index.name(), "WST" | "WSA") {
                    prop_assert_eq!(
                        &index.query(pattern, &x).unwrap(),
                        &expected,
                        "{} on pattern {:?}",
                        index.name(),
                        pattern
                    );
                }
            }
        }
    }

    /// Structural invariants: mismatch counts respect Lemma 3, grid points
    /// pair the two factor sets, and reported stats are internally coherent.
    #[test]
    fn structural_invariants(
        x in weighted_string_strategy(),
        z in 2.0f64..16.0,
    ) {
        let ell = 6usize;
        let params = IndexParams::new(z, ell, x.sigma()).unwrap();
        let index = MinimizerIndex::build(&x, params, IndexVariant::ArrayGrid).unwrap();
        let stats = index.stats();
        prop_assert_eq!(stats.size_bytes, index.size_bytes());
        // Each grid point pairs one forward and one backward leaf.
        prop_assert!(stats.num_grid_points * 2 <= stats.num_leaves || stats.num_leaves == 0);
        // Lemma 3: the average number of mismatches per factor is at most log2 z.
        if stats.num_leaves > 0 {
            let avg = stats.num_mismatches as f64 / stats.num_leaves as f64;
            prop_assert!(avg <= max_solid_mismatches(z) as f64 + 1e-9);
        }
    }

    /// The z-estimation → property-text pipeline preserves the exact set of
    /// solid occurrences for every single-letter pattern (a cheap exhaustive
    /// check complementing the sampled patterns above).
    #[test]
    fn single_letter_occurrences(
        x in weighted_string_strategy(),
        z in 1.0f64..10.0,
    ) {
        let est = ZEstimation::build(&x, z).unwrap();
        let wsa = Wsa::build_from_estimation(&est).unwrap();
        for letter in 0..x.sigma() as u8 {
            let expected = solid::occurrences(&x, &[letter], z);
            prop_assert_eq!(wsa.query(&[letter], &x).unwrap(), expected);
        }
    }
}
