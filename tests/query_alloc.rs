//! Asserts the acceptance criterion of the query-engine overhaul: once a
//! [`QueryScratch`]'s buffers have warmed up, `query_into` performs **no
//! heap allocation** on the minimizer-index hot paths (simple and grid
//! queries, count-only sink).
//!
//! This integration test is its own binary, so installing the counting
//! allocator here affects nothing else in the workspace.

use ius::prelude::*;
use ius_memtrack::CountingAllocator;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator::new();

fn workload() -> (WeightedString, ZEstimation, Vec<Vec<u8>>, IndexParams) {
    let x = PangenomeConfig {
        n: 2_000,
        delta: 0.05,
        seed: 0xA110C,
        ..Default::default()
    }
    .generate();
    let z = 16.0;
    let ell = 32usize;
    let est = ZEstimation::build(&x, z).unwrap();
    let mut sampler = PatternSampler::new(&est, 77);
    let mut patterns = sampler.sample_many(ell, 40);
    patterns.extend(sampler.sample_many(2 * ell, 20));
    assert!(patterns.len() >= 40, "workload needs patterns");
    let params = IndexParams::new(z, ell, x.sigma()).unwrap();
    (x, est, patterns, params)
}

/// Runs every pattern once to warm the scratch, then asserts that a second
/// full pass allocates zero heap bytes.
fn assert_steady_state_allocation_free(variant: IndexVariant, label: &str) {
    let (x, est, patterns, params) = workload();
    let index = MinimizerIndex::build_from_estimation(&x, &est, params, variant).unwrap();
    let mut scratch = QueryScratch::new();
    let mut sink = CountSink::new();

    // Warm-up pass: buffers grow to the workload's high-water mark.
    let mut warm_count = 0usize;
    for pattern in &patterns {
        index
            .query_into(pattern, &x, &mut scratch, &mut sink)
            .unwrap();
        warm_count = sink.count;
    }

    // Steady-state pass: must not touch the allocator at all.
    let (steady_count, mem) = ius_memtrack::measure(|| {
        let mut sink = CountSink::new();
        for pattern in &patterns {
            index
                .query_into(pattern, &x, &mut scratch, &mut sink)
                .unwrap();
        }
        sink.count
    });
    assert!(ius_memtrack::is_installed());
    assert_eq!(
        mem.peak_bytes,
        0,
        "{label}: steady-state query_into allocated {} bytes over {} queries",
        mem.peak_bytes,
        patterns.len()
    );
    assert_eq!(mem.retained_bytes, 0, "{label}: steady state retained heap");
    assert!(
        steady_count >= warm_count,
        "{label}: queries kept answering"
    );
    assert!(steady_count > 0, "{label}: workload found occurrences");
}

#[test]
fn mwsa_simple_query_is_allocation_free_after_warmup() {
    assert_steady_state_allocation_free(IndexVariant::Array, "MWSA");
}

#[test]
fn mwsa_grid_query_is_allocation_free_after_warmup() {
    assert_steady_state_allocation_free(IndexVariant::ArrayGrid, "MWSA-G");
}

#[test]
fn mwst_tree_query_is_allocation_free_after_warmup() {
    assert_steady_state_allocation_free(IndexVariant::Tree, "MWST");
}

/// The serving hot path is `query_into` **plus** metrics recording: stage
/// timings into log-linear histograms, op counters, and a ring-buffer
/// slow-query log. All of it must stay allocation-free in steady state —
/// the observability layer's core promise.
#[test]
fn instrumented_query_recording_is_allocation_free_after_warmup() {
    use ius_obs::{clock, Counter, EventLog, Histogram};
    let (x, est, patterns, params) = workload();
    let index =
        MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::ArrayGrid).unwrap();
    let mut scratch = QueryScratch::new();
    // The registry mirrors the server's per-worker one: histograms and the
    // event log allocate once here, never on the recording path.
    let scan = Histogram::new();
    let locate = Histogram::new();
    let verify = Histogram::new();
    let report = Histogram::new();
    let queries = Counter::new();
    let slow_log = EventLog::new(128);
    clock::warm_up();
    assert!(clock::enabled(), "timing must be on for this test");

    // Warm-up pass.
    let mut sink = CountSink::new();
    for pattern in &patterns {
        index
            .query_into(pattern, &x, &mut scratch, &mut sink)
            .unwrap();
    }

    // Steady state: query + full metrics recording, zero heap traffic.
    // Stage recording mirrors the server: only queries that drew a
    // stage-tracing ticket (1 in `clock::STAGE_SAMPLE_EVERY`) carry
    // stamped stage fields and reach the stage histograms.
    let ((recorded, timed), mem) = ius_memtrack::measure(|| {
        let mut sink = CountSink::new();
        let mut timed = 0u64;
        for pattern in &patterns {
            let start = clock::now_ns();
            let stats = index
                .query_into(pattern, &x, &mut scratch, &mut sink)
                .unwrap();
            if stats.timed {
                timed += 1;
                scan.record(stats.scan_ns);
                locate.record(stats.locate_ns);
                verify.record(stats.verify_ns);
                report.record(stats.report_ns);
            }
            queries.inc();
            let elapsed = clock::now_ns().saturating_sub(start);
            slow_log.record(pattern.len() as u64, elapsed, stats.reported as u64);
        }
        (queries.get(), timed)
    });
    assert!(ius_memtrack::is_installed());
    assert_eq!(
        mem.peak_bytes, 0,
        "instrumented steady-state queries allocated {} bytes",
        mem.peak_bytes
    );
    assert_eq!(mem.retained_bytes, 0, "instrumentation retained heap");
    assert_eq!(recorded as usize, patterns.len());
    // 60 patterns at a 1-in-16 ticket guarantee several timed queries on
    // this thread no matter where the tick starts.
    assert!(
        timed >= 1,
        "sampling must trace some of {} queries",
        recorded
    );
    assert_eq!(scan.count(), timed);
    assert_eq!(slow_log.recorded(), patterns.len() as u64);
    // The stage stamps really measured something on this build.
    assert!(scan.snapshot().sum > 0, "scan stage timings recorded");
}

/// The fully traced serving path — span tree into the thread-local trace
/// buffer, flight-recorder push, slow-query ring push with its pattern
/// prefix — must stay allocation-free in steady state, on sampled and
/// unsampled requests alike. This is the budget behind the <2%
/// instrumentation-overhead acceptance row.
#[test]
fn traced_query_path_is_allocation_free_after_warmup() {
    use ius_obs::{clock, trace};
    use ius_server::{FlightRecorder, SlowRing, TRACE_NO_ERROR};
    let (x, est, patterns, params) = workload();
    let index =
        MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::ArrayGrid).unwrap();
    let mut scratch = QueryScratch::new();
    // The rings preallocate at construction, exactly like the server's
    // shared state; nothing below may touch the allocator again.
    let flight = FlightRecorder::new();
    let slow = SlowRing::new(64);
    clock::warm_up();
    assert!(clock::enabled(), "timing must be on for this test");

    // Mirrors one served request: arm the trace on sampled requests, wrap
    // the query in a STAGE_QUERY span with stage leaves, then push the
    // finished trace into the flight recorder and the timing into the
    // slow ring.
    let run_one = |pattern: &Vec<u8>, sampled: bool, scratch: &mut QueryScratch| -> u64 {
        let start = clock::now_ns();
        let armed = sampled && trace::begin(trace::next_trace_id());
        if armed {
            trace::leaf(trace::STAGE_QUEUE_WAIT, 120, 0, 0);
            trace::enter(trace::STAGE_QUERY);
        }
        let mut sink = CountSink::new();
        let stats = index.query_into(pattern, &x, scratch, &mut sink).unwrap();
        if armed {
            if stats.timed {
                trace::leaf(trace::STAGE_SCAN, stats.scan_ns, 0, 0);
                trace::leaf(
                    trace::STAGE_VERIFY,
                    stats.verify_ns,
                    stats.candidates as u64,
                    0,
                );
            }
            trace::exit_with(stats.candidates as u64, stats.reported as u64);
        }
        let elapsed = clock::now_ns().saturating_sub(start);
        let recorded = trace::finish(|buf| {
            flight.record(buf, 1, TRACE_NO_ERROR, elapsed);
        });
        assert_eq!(recorded.is_some(), sampled, "arming must follow the ticket");
        slow.record(
            elapsed,
            pattern.len() as u64,
            pattern,
            stats.reported as u64,
        );
        stats.reported as u64
    };

    // Warm-up pass, alternating sampled and unsampled requests.
    for (i, pattern) in patterns.iter().enumerate() {
        run_one(pattern, i % 2 == 0, &mut scratch);
    }

    // Steady state: the whole traced request loop, zero heap traffic.
    let (reported, mem) = ius_memtrack::measure(|| {
        let mut reported = 0u64;
        for (i, pattern) in patterns.iter().enumerate() {
            reported += run_one(pattern, i % 2 == 0, &mut scratch);
        }
        reported
    });
    assert!(ius_memtrack::is_installed());
    assert_eq!(
        mem.peak_bytes,
        0,
        "traced steady-state queries allocated {} bytes over {} requests",
        mem.peak_bytes,
        patterns.len()
    );
    assert_eq!(mem.retained_bytes, 0, "traced path retained heap");
    assert!(reported > 0, "workload found occurrences");
    // Both rings really absorbed the pushes.
    let occupancy = flight.occupancy();
    assert!(occupancy.recent > 0, "flight recorder captured traces");
    assert_eq!(slow.recorded(), 2 * patterns.len() as u64);
    // Sampled traces carry the span tree.
    let snapshot = flight.snapshot();
    assert!(snapshot
        .iter()
        .any(|t| t.spans.iter().any(|s| s.code == trace::STAGE_QUERY)));
}

#[test]
fn collecting_into_a_warm_reused_vector_is_also_allocation_free() {
    let (x, est, patterns, params) = workload();
    let index =
        MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::ArrayGrid).unwrap();
    let mut scratch = QueryScratch::new();
    let mut out: Vec<usize> = Vec::new();
    let mut high_water = 0usize;
    for pattern in &patterns {
        out.clear();
        index
            .query_into(pattern, &x, &mut scratch, &mut out)
            .unwrap();
        high_water = high_water.max(out.len());
    }
    // `out` has warmed to the largest single answer; replaying the workload
    // into it allocates nothing.
    let (_, mem) = ius_memtrack::measure(|| {
        for pattern in &patterns {
            out.clear();
            index
                .query_into(pattern, &x, &mut scratch, &mut out)
                .unwrap();
        }
    });
    assert_eq!(mem.peak_bytes, 0, "reused collect sink allocated");
    assert!(high_water > 0);
}
