//! End-to-end serving test: build → save → serve from the file on an
//! ephemeral loopback port → concurrent clients exercise every result mode
//! → every response is identical to a direct in-process `query_into` on the
//! same index — plus a hot-reload storm proving queries issued during index
//! swaps complete correctly.

use ius::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ius-serve-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn build_corpus_and_patterns() -> (WeightedString, f64, usize, Vec<Vec<u8>>) {
    let x = PangenomeConfig {
        n: 6_000,
        delta: 0.06,
        seed: 0x5E47,
        ..Default::default()
    }
    .generate();
    let (z, ell) = (16.0, 32usize);
    let est = ZEstimation::build(&x, z).expect("estimation");
    let mut sampler = PatternSampler::new(&est, 3);
    let mut patterns = sampler.sample_many(ell, 30);
    patterns.extend(sampler.sample_many(2 * ell, 15));
    patterns.extend(sampler.sample_random(ell, 15, 99));
    assert!(patterns.len() >= 40, "need a real pattern set");
    (x, z, ell, patterns)
}

#[test]
fn concurrent_clients_see_exactly_the_in_process_answers() {
    let (x, z, ell, patterns) = build_corpus_and_patterns();
    let params = IndexParams::new(z, ell, x.sigma()).expect("params");
    let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params);
    let index = spec.build(&x).expect("build");

    // Save, then serve from the file (the acceptance path: nothing is
    // reused from the in-memory build).
    let dir = scratch_dir("single");
    let path = dir.join("mwsa-g.iusx");
    let mut file = std::fs::File::create(&path).expect("create");
    index.save_to(&mut file).expect("save");
    drop(file);
    let served = ServedIndex::load(&path, Some(Arc::new(x.clone()))).expect("load for serving");
    let server = Server::bind(
        "127.0.0.1:0",
        served,
        Some(path.clone()),
        &ServerConfig {
            workers: 4,
            queue_depth: 16,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // In-process ground truth through the same engine entry point.
    let mut scratch = QueryScratch::new();
    let expected: Vec<Vec<usize>> = patterns
        .iter()
        .map(|p| {
            let mut out = Vec::new();
            index
                .query_into(p, &x, &mut scratch, &mut out)
                .expect("in-process query");
            out
        })
        .collect();

    // ≥ 4 concurrent client threads, each with its own connection, each
    // exercising all three result modes over its slice of the patterns.
    let threads = 4usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let patterns = &patterns;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (i, pattern) in patterns.iter().enumerate().skip(t).step_by(threads) {
                    let want = &expected[i];
                    let outcome = client.query(pattern).expect("collect");
                    assert_eq!(&outcome.positions, want, "thread {t}, pattern {i}");
                    assert_eq!(outcome.stats.reported, want.len());
                    let (count, _) = client.query_count(pattern).expect("count");
                    assert_eq!(count as usize, want.len(), "thread {t}, pattern {i}");
                    let k = 3u64;
                    let first = client.query_first_k(pattern, k).expect("first-k");
                    assert_eq!(
                        first.positions,
                        want[..want.len().min(k as usize)].to_vec(),
                        "thread {t}, pattern {i}"
                    );
                }
            });
        }
    });

    let mut client = Client::connect(addr).expect("connect");
    let snapshot = client.stats().expect("stats");
    assert_eq!(snapshot.index_name, "MWSA-G");
    assert_eq!(snapshot.corpus_len as usize, x.len());
    assert_eq!(snapshot.queries as usize, patterns.len() * 3);
    assert_eq!(snapshot.query_errors, 0);
    assert_eq!(snapshot.generation, 0);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_index_files_are_served_self_contained() {
    let (x, z, ell, patterns) = build_corpus_and_patterns();
    let params = IndexParams::new(z, ell, x.sigma()).expect("params");
    let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::Array), params);
    let sharded = ShardedIndex::build(&x, spec, 3, 2 * ell).expect("sharded build");
    let dir = scratch_dir("sharded");
    let path = dir.join("sharded.iusx");
    let mut file = std::fs::File::create(&path).expect("create");
    sharded.save_to(&mut file).expect("save");
    drop(file);

    // No corpus handed to the server: the file is self-contained.
    let served = ServedIndex::load(&path, None).expect("load sharded");
    let server = Server::bind("127.0.0.1:0", served, None, &ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for pattern in patterns.iter().take(20) {
        assert_eq!(
            client.query(pattern).expect("served query").positions,
            sharded.query_owned(pattern).expect("in-process query")
        );
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_reload_swaps_generations_while_queries_are_in_flight() {
    let (x, z, ell, patterns) = build_corpus_and_patterns();
    let params = IndexParams::new(z, ell, x.sigma()).expect("params");
    let corpus = Arc::new(x.clone());

    // Two index files over the same corpus: different families, identical
    // answers — so any interleaving of queries and swaps must produce the
    // same outputs.
    let dir = scratch_dir("reload");
    let path_a = dir.join("a.iusx");
    let path_b = dir.join("b.iusx");
    let index_a = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::Array), params)
        .build(&x)
        .expect("build A");
    let index_b = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params)
        .build(&x)
        .expect("build B");
    index_a
        .save_to(&mut std::fs::File::create(&path_a).expect("create A"))
        .expect("save A");
    index_b
        .save_to(&mut std::fs::File::create(&path_b).expect("create B"))
        .expect("save B");

    let expected: Vec<Vec<usize>> = patterns
        .iter()
        .map(|p| index_a.query(p, &x).expect("ground truth"))
        .collect();

    let served = ServedIndex::load(&path_a, Some(corpus)).expect("load A");
    let server = Server::bind(
        "127.0.0.1:0",
        served,
        Some(path_a.clone()),
        &ServerConfig {
            workers: 4,
            queue_depth: 16,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Query threads hammer the server while a reloader thread keeps
    // swapping the index back and forth. Every query must succeed with the
    // exact expected answer — proving in-flight queries complete across
    // swaps (the Arc snapshot outlives the swap).
    let stop = AtomicBool::new(false);
    let reloads_done = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        let mut query_threads = Vec::new();
        for t in 0..4usize {
            let patterns = &patterns;
            let expected = &expected;
            query_threads.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..3 {
                    for (i, pattern) in patterns.iter().enumerate() {
                        let outcome = client.query(pattern).expect("query during reloads");
                        assert_eq!(
                            &outcome.positions, &expected[i],
                            "thread {t}, round {round}, pattern {i}"
                        );
                    }
                }
            }));
        }
        let reloader = scope.spawn(|| {
            let mut client = Client::connect(addr).expect("connect reloader");
            let mut flip = false;
            // Always at least one swap, then keep flipping until the query
            // threads are done.
            loop {
                let path = if flip { &path_b } else { &path_a };
                flip = !flip;
                let generation = client
                    .reload(Some(path.to_str().expect("utf-8 path")))
                    .expect("reload");
                assert!(generation > 0);
                reloads_done.fetch_add(1, Ordering::Relaxed);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        for handle in query_threads {
            handle.join().expect("query thread");
        }
        stop.store(true, Ordering::Relaxed);
        reloader.join().expect("reloader thread");
    });
    assert!(
        reloads_done.load(Ordering::Relaxed) >= 1,
        "at least one hot reload must have interleaved with the queries"
    );

    // The swap really happened: generation advanced, and a fresh query
    // still answers correctly on whatever index is current.
    let mut client = Client::connect(addr).expect("connect");
    let snapshot = client.stats().expect("stats");
    assert!(snapshot.generation >= 1);
    assert_eq!(snapshot.query_errors, 0);
    assert_eq!(
        client
            .query(&patterns[0])
            .expect("post-reload query")
            .positions,
        expected[0]
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
