//! Cross-checks `size_bytes()` against the counting allocator: for every
//! index family, the self-reported footprint must match the heap actually
//! retained by construction. This is the audit net for the space figures —
//! a forgotten allocation (packed prefix keys, precomputed log-ratios,
//! grid pair tables, …) shows up here as under-reporting, a double count as
//! over-reporting.
//!
//! This integration test is its own binary, so installing the counting
//! allocator here affects nothing else in the workspace. All checks run
//! inside a single `#[test]` so no parallel test perturbs the live-byte
//! counters during a measurement.

use ius::prelude::*;
use ius_index::{AnyIndex, IndexFamily, IndexSpec, ShardedIndex};
use ius_memtrack::CountingAllocator;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator::new();

/// Asserts `reported` is within `tolerance` (fractional) plus `slack_bytes`
/// of `retained`, in both directions.
fn assert_close(label: &str, reported: usize, retained: usize, tolerance: f64, slack_bytes: usize) {
    let lo = retained as f64 * (1.0 - tolerance) - slack_bytes as f64;
    let hi = retained as f64 * (1.0 + tolerance) + slack_bytes as f64;
    assert!(
        (reported as f64) >= lo && (reported as f64) <= hi,
        "{label}: size_bytes() reports {reported} but construction retained {retained} \
         heap bytes (allowed [{lo:.0}, {hi:.0}])"
    );
}

#[test]
fn size_bytes_matches_retained_heap_for_every_family() {
    let x = PangenomeConfig {
        n: 3_000,
        delta: 0.06,
        seed: 0x51E,
        ..Default::default()
    }
    .generate();
    let (z, ell) = (16.0, 32usize);
    let params = IndexParams::new(z, ell, x.sigma()).unwrap();

    for family in IndexFamily::all() {
        if matches!(family, IndexFamily::Naive) {
            continue; // O(1)-sized; nothing meaningful to cross-check.
        }
        let spec = IndexSpec::new(family, params);
        // Everything construction-internal (the z-estimation, LCE tables,
        // sort buffers) is freed inside the closure, so the net growth is
        // exactly the index's retained heap.
        let (index, mem) = ius_memtrack::measure(|| spec.build(&x).unwrap());
        assert!(
            mem.retained_bytes > 0,
            "{}: nothing retained?",
            family.name()
        );
        assert!(mem.peak_bytes >= mem.retained_bytes);
        // 2% + 4 KB covers allocator-header noise (Arc control blocks) and
        // the enum wrapper; anything beyond that is an accounting bug.
        assert_close(
            family.name(),
            index.size_bytes(),
            mem.retained_bytes,
            0.02,
            4096,
        );
        drop::<AnyIndex>(index);
    }

    // The sharded composite: shard chunks of X are owned allocations and
    // must be part of the reported footprint. The per-shard Alphabet tables
    // are the only heap size_bytes does not see — covered by the slack.
    let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params);
    let (sharded, mem) =
        ius_memtrack::measure(|| ShardedIndex::build(&x, spec, 4, 2 * ell).unwrap());
    assert_close(
        "SHARDED-MWSA-G(S=4)",
        sharded.size_bytes(),
        mem.retained_bytes,
        0.03,
        16 * 1024,
    );
    drop(sharded);

    // ---- arena-open accounting ------------------------------------------
    // A v3 file opened through the arena path retains ONE buffer (the
    // arena) plus the few small owned structures the loader derives.
    // `size_bytes()` must count the arena exactly once — via the retained
    // `Arena` handle, since every borrowed view reports zero owned bytes —
    // and the views attribute their byte ranges back to the arena.
    for family in [
        IndexFamily::Wst,
        IndexFamily::Wsa,
        IndexFamily::Minimizer(IndexVariant::ArrayGrid),
        IndexFamily::SpaceEfficient(IndexVariant::Tree),
    ] {
        let spec = IndexSpec::new(family, params);
        let built = spec.build(&x).unwrap();
        let mut bytes = Vec::new();
        ius_index::save_index(&built, &mut bytes).unwrap();
        drop(built);

        // The arena itself is a single buffer allocation (plus the Arc
        // control block), no matter how many megabytes it spans.
        let (arena, mem) = ius_memtrack::measure(|| ius_arena::Arena::from_bytes(&bytes));
        assert_eq!(
            mem.alloc_calls,
            2,
            "{}: an arena must be one buffer allocation + one Arc block",
            family.name()
        );

        // Opening out of it allocates O(sections) small structures, not
        // O(elements): the flat arrays stay in the arena as views.
        let (opened, mem) = ius_memtrack::measure(|| ius_index::open_index(&arena).unwrap());
        assert!(
            mem.alloc_calls < 256,
            "{}: arena open made {} allocations — the flat arrays must be \
             zero-copy views, not decoded vectors",
            family.name(),
            mem.alloc_calls
        );
        let attributed = arena.attributed_bytes();
        assert!(
            attributed > 0 && attributed <= arena.len(),
            "{}: views attributed {attributed} of {} arena bytes",
            family.name(),
            arena.len()
        );
        // The opened index's self-reported footprint covers the arena
        // (counted once) plus what the open retained on top of it.
        assert_close(
            &format!("{} (arena open)", family.name()),
            opened.size_bytes(),
            arena.alloc_bytes() + mem.retained_bytes,
            0.02,
            4096,
        );
        drop(opened);
        drop(arena);
    }
}
